//! Compiled execution plans: the CAM-friendly dense layout of an
//! automaton that the simulator executes.
//!
//! The paper's premise is that automata processing gets fast and
//! energy-efficient when the NFA is *compiled down* to dense match and
//! routing structures instead of interpreted pointer-chasing structure:
//! a CAM array answers "which states accept this symbol" in one search,
//! and a local switch answers "which states do the active ones enable"
//! in one route. [`CompiledAutomaton`] is the software analogue:
//!
//! * a full 256-entry symbol → match-[`BitSet`] table covering **all**
//!   STEs (the CAM search result for every possible input symbol);
//! * a CSR adjacency — one offsets array plus one flat successor
//!   array — replacing per-state `Vec` chasing (the switch fabric);
//! * packed report metadata: a report mask plus rank-indexed codes;
//! * precomputed start masks for both start kinds.
//!
//! With this plan the per-cycle step is word-level:
//! `active = match_table[symbol] & enabled`, 64 states at a time, which
//! is what `cama-sim`'s engines execute. [`CompiledStridedAutomaton`]
//! is the same layout for 2-stride automata, where the pair match
//! vector is the AND of two per-byte tables
//! (`first_table[a] & second_table[b]`) — the software form of the
//! paper's two-segment match CAM.
//!
//! [`CompiledEncodedAutomaton`] is the *encoding-aware* flavour: its
//! match rows are not indexed by raw 8-bit symbols but by the codes of
//! an encoding codebook (CAMA's remapped input alphabet), and each row
//! is derived by evaluating every state's stored CAM entries — including
//! negated entries — against that code. The per-cycle step first runs
//! the input-encoder lookup (symbol → code row) and then executes the
//! identical word-level loop, so the functional engine exercises exactly
//! the entry layout the energy model charges for. The
//! [`ExecutionPlan`] trait abstracts the per-symbol row interface both
//! flavours share, which is also what lets either act as the per-shard
//! plan of a [`ShardedAutomaton`].
//!
//! # Examples
//!
//! ```
//! use cama_core::compiled::{CompiledAutomaton, ShardedAutomaton};
//! use cama_core::regex;
//!
//! let nfa = regex::compile_set(&["ab+c", "xy+z"])?;
//! // The flat plan: one dense layout over the whole automaton.
//! let flat = CompiledAutomaton::compile(&nfa);
//! assert_eq!(flat.len(), nfa.len());
//! // The same states split across two simulated CAM arrays (shards
//! // never split a connected component); the engines produce
//! // bit-identical results on either.
//! let sharded = ShardedAutomaton::compile(&nfa, 2);
//! assert_eq!(sharded.num_shards(), 2);
//! assert_eq!(sharded.len(), nfa.len());
//! # Ok::<(), cama_core::Error>(())
//! ```

use crate::bitset::{BitSet, Row};
use crate::graph::connected_components;
use crate::kernel;
use crate::nfa::{BuildOptions, Nfa, NfaBuilder, StartKind};
use crate::stride::{ReportPhase, StridedNfa};
use crate::symbol::ALPHABET;

/// Packed report metadata shared by both compiled flavours: a mask of
/// reporting states plus their codes stored rank-indexed (one entry per
/// reporting state, not per state).
#[derive(Clone, Debug, PartialEq, Eq)]
struct ReportTable {
    /// Bit `i` set iff state `i` reports.
    mask: BitSet,
    /// Number of reporting states in words `0..w` of `mask`, per word.
    word_rank: Vec<u32>,
    /// Report codes of reporting states, in state order.
    codes: Vec<u32>,
}

impl ReportTable {
    fn build(len: usize, reports: impl Iterator<Item = (usize, u32)>) -> ReportTable {
        let mut mask = BitSet::new(len);
        let mut codes = Vec::new();
        for (state, code) in reports {
            mask.insert(state);
            codes.push(code);
        }
        let mut word_rank = Vec::with_capacity(mask.as_words().len());
        let mut rank = 0u32;
        for &word in mask.as_words() {
            word_rank.push(rank);
            rank += word.count_ones();
        }
        ReportTable {
            mask,
            word_rank,
            codes,
        }
    }

    /// The mask of reporting states.
    fn mask(&self) -> &BitSet {
        &self.mask
    }

    /// The rank of a reporting `state`: its index into the packed
    /// per-reporting-state arrays (`codes`, and the strided `phases`).
    fn rank(&self, state: usize) -> usize {
        let word = state / 64;
        let below = self.mask.as_words()[word] & ((1u64 << (state % 64)) - 1);
        self.word_rank[word] as usize + below.count_ones() as usize
    }

    /// The report code of `state`, which must be reporting.
    fn code(&self, state: usize) -> u32 {
        self.codes[self.rank(state)]
    }

    fn code_checked(&self, state: usize) -> Option<u32> {
        if state < self.mask.len() && self.mask.contains(state) {
            Some(self.code(state))
        } else {
            None
        }
    }
}

/// The dense, immutable execution plan compiled from an [`Nfa`].
///
/// A plan is self-contained (it does not borrow the source automaton),
/// `Sync`, and intended to be shared: one compiled plan can drive any
/// number of concurrent stream simulations.
///
/// # Examples
///
/// ```
/// use cama_core::compiled::CompiledAutomaton;
/// use cama_core::regex;
///
/// let nfa = regex::compile("(a|b)e*cd+")?;
/// let plan = CompiledAutomaton::compile(&nfa);
/// assert_eq!(plan.len(), nfa.len());
/// // Every state whose class contains b'c' is in the match vector.
/// let matched = plan.match_vector(b'c');
/// assert_eq!(
///     matched.iter().count(),
///     nfa.stes().iter().filter(|s| s.class.contains(b'c')).count()
/// );
/// # Ok::<(), cama_core::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct CompiledAutomaton {
    len: usize,
    name: String,
    /// `match_rows[sym]`: all states whose class accepts `sym`, one
    /// flat cache-blocked row per symbol. Each row carries its
    /// one-bit-per-word summary, which the engine uses the way CAMA
    /// uses selective precharge: 64-state words that cannot match a
    /// symbol are never visited.
    match_rows: RowTable,
    /// `start_rows[sym] = match_rows[sym] & all_input`: the statically
    /// enabled states that accept `sym`, precompiled so the per-cycle
    /// start injection touches only the (typically very few) words where
    /// a start state actually matches.
    start_rows: RowTable,
    /// CSR adjacency: successors of state `i` are
    /// `successors[succ_offsets[i]..succ_offsets[i + 1]]`.
    succ_offsets: Vec<u32>,
    successors: Vec<u32>,
    /// States enabled statically on every symbol (`all-input` starts).
    all_input: BitSet,
    /// Summary of `all_input`, one bit per 64-state word.
    all_input_any: Vec<u64>,
    /// States enabled only at cycle 0 (`start-of-data` starts).
    start_of_data: BitSet,
    /// Summary of `start_of_data`, one bit per 64-state word.
    start_of_data_any: Vec<u64>,
    reports: ReportTable,
}

/// Builds the one-bit-per-word nonzero summary of a bit set.
fn word_summary(set: &BitSet) -> Vec<u64> {
    let mut summary = vec![0u64; set.as_words().len().div_ceil(64)];
    kernel::summarize(set.as_words(), &mut summary);
    summary
}

/// A flat, cache-blocked table of fixed-width bit rows — the storage
/// layout of every per-symbol match table.
///
/// All rows live in one `Vec<u64>` at a constant stride padded to a
/// multiple of 4 words (one 256-bit kernel lane), so consecutive rows
/// never share a 32-byte group and [`row`](RowTable::row) is always a
/// contiguous slice the SIMD kernels in [`crate::kernel`] can stream.
/// Each row's one-bit-per-word nonzero summary (the selective-precharge
/// analogue) is packed the same way in a second flat array.
#[derive(Clone, Debug)]
struct RowTable {
    /// Bits per row.
    len: usize,
    /// Exact words per row (`len.div_ceil(64)`).
    words_per_row: usize,
    /// Padded row stride in words (multiple of 4).
    stride: usize,
    /// Words per row summary (`words_per_row.div_ceil(64)`).
    summary_words: usize,
    /// `num_rows * stride` words; padding words stay zero.
    data: Vec<u64>,
    /// `num_rows * summary_words` words.
    summaries: Vec<u64>,
}

impl RowTable {
    /// Packs `rows` (each of capacity `len` bits) into the flat layout.
    ///
    /// # Panics
    ///
    /// Panics if any row's capacity differs from `len`.
    fn from_rows(len: usize, rows: &[BitSet]) -> RowTable {
        let words_per_row = len.div_ceil(64);
        let stride = words_per_row.next_multiple_of(4);
        let summary_words = words_per_row.div_ceil(64);
        let mut data = vec![0u64; rows.len() * stride];
        let mut summaries = vec![0u64; rows.len() * summary_words];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), len, "row capacity mismatch");
            data[i * stride..i * stride + words_per_row].copy_from_slice(row.as_words());
            kernel::summarize(
                row.as_words(),
                &mut summaries[i * summary_words..(i + 1) * summary_words],
            );
        }
        RowTable {
            len,
            words_per_row,
            stride,
            summary_words,
            data,
            summaries,
        }
    }

    /// Row `i` as a borrowed exact-length view.
    fn row(&self, i: usize) -> Row<'_> {
        let start = i * self.stride;
        Row::from_words(self.len, &self.data[start..start + self.words_per_row])
    }

    /// The one-bit-per-word nonzero summary of row `i`.
    fn summary(&self, i: usize) -> &[u64] {
        &self.summaries[i * self.summary_words..(i + 1) * self.summary_words]
    }
}

/// Builds the CSR adjacency (offsets + flat successor array) of `nfa`.
fn build_csr(nfa: &Nfa) -> (Vec<u32>, Vec<u32>) {
    let n = nfa.len();
    let mut succ_offsets = Vec::with_capacity(n + 1);
    let mut successors = Vec::with_capacity(nfa.num_edges());
    succ_offsets.push(0);
    for i in 0..n {
        successors.extend(
            nfa.successors(crate::nfa::SteId(i as u32))
                .iter()
                .map(|s| s.0),
        );
        succ_offsets.push(successors.len() as u32);
    }
    (succ_offsets, successors)
}

/// Builds the packed report table of `nfa`.
fn build_reports(nfa: &Nfa) -> ReportTable {
    ReportTable::build(
        nfa.len(),
        nfa.stes()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.report.map(|code| (i, code))),
    )
}

/// The precompiled start-match rows and one-bit-per-word summaries
/// derived from a match table and the start masks — the selective-
/// precharge acceleration structures shared by the byte and encoded
/// plan layouts.
struct DerivedRows {
    match_rows: RowTable,
    start_rows: RowTable,
    all_input_any: Vec<u64>,
    start_of_data_any: Vec<u64>,
}

/// Derives [`DerivedRows`] from a match table (one row per symbol or
/// per code) and the start masks.
fn derive_rows(match_table: &[BitSet], all_input: &BitSet, start_of_data: &BitSet) -> DerivedRows {
    let len = all_input.len();
    let start_match: Vec<BitSet> = match_table
        .iter()
        .map(|row| {
            let mut statically_matched = row.clone();
            statically_matched.intersect_with(all_input);
            statically_matched
        })
        .collect();
    DerivedRows {
        match_rows: RowTable::from_rows(len, match_table),
        start_rows: RowTable::from_rows(len, &start_match),
        all_input_any: word_summary(all_input),
        start_of_data_any: word_summary(start_of_data),
    }
}

/// Builds the two start masks (`all-input`, `start-of-data`) of `nfa`.
fn build_start_masks(nfa: &Nfa) -> (BitSet, BitSet) {
    let mut all_input = BitSet::new(nfa.len());
    let mut start_of_data = BitSet::new(nfa.len());
    for (i, ste) in nfa.stes().iter().enumerate() {
        match ste.start {
            StartKind::AllInput => all_input.insert(i),
            StartKind::StartOfData => start_of_data.insert(i),
            StartKind::None => {}
        }
    }
    (all_input, start_of_data)
}

/// The plan shape every compiled flavour shares — state count, start
/// masks, packed report mask, and the CSR successor adjacency — split
/// out of [`ExecutionPlan`] so the [`ShardedAutomaton`] shell (and any
/// other plan consumer that does not step cycles itself) can hold byte,
/// encoded, and strided plans behind one bound.
pub trait PlanBase: Sync {
    /// Number of states.
    fn len(&self) -> usize;

    /// Returns `true` if the plan has no states.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of activation edges.
    fn num_edges(&self) -> usize;

    /// States statically enabled on every cycle (`all-input` starts).
    fn all_input_mask(&self) -> &BitSet;

    /// States enabled only on the first cycle (`start-of-data` starts).
    fn start_of_data_mask(&self) -> &BitSet;

    /// The word-level summary of
    /// [`start_of_data_mask`](Self::start_of_data_mask).
    fn start_of_data_any(&self) -> &[u64];

    /// The mask of reporting states.
    fn report_mask(&self) -> &BitSet;

    /// CSR successor slice of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    fn successors(&self, state: usize) -> &[u32];
}

/// The per-cycle row interface a byte-stream execution plan exposes to
/// the engines: per-symbol match and start-match rows with their
/// one-bit-per-word summaries, start masks, packed report metadata, and
/// the CSR successor adjacency.
///
/// Implemented by [`CompiledAutomaton`] (rows indexed directly by the
/// raw 8-bit symbol) and [`CompiledEncodedAutomaton`] (rows indexed by
/// the encoded code the input encoder produces for the symbol), so a
/// single stepping loop in `cama-sim` — and a single [`ShardedAutomaton`]
/// shell — drives both layouts. The paired-symbol counterpart is
/// [`StridedPlan`].
pub trait ExecutionPlan: PlanBase {
    /// The match vector of `symbol`: every state accepting it, as a
    /// contiguous [`Row`] into the flat match table.
    fn match_vector(&self, symbol: u8) -> Row<'_>;

    /// The word-level summary of [`match_vector`](Self::match_vector).
    fn match_any(&self, symbol: u8) -> &[u64];

    /// The statically matched start states for `symbol`:
    /// `match_vector(symbol) & all_input_mask()`.
    fn start_match(&self, symbol: u8) -> Row<'_>;

    /// The word-level summary of [`start_match`](Self::start_match).
    fn start_match_any(&self, symbol: u8) -> &[u64];

    /// The report code of a state known to report (O(1), packed).
    ///
    /// # Panics
    ///
    /// May panic or return an arbitrary code if `state` is not
    /// reporting; callers must consult [`report_mask`](PlanBase::report_mask)
    /// first.
    fn report_code_unchecked(&self, state: usize) -> u32;

    /// The match-row index of an input symbol: `symbol` itself for byte
    /// plans, the encoder's code for encoded plans. Two symbols with
    /// equal row indices are indistinguishable to the plan, which is
    /// what [`CompiledDfa::determinize`] exploits to build one
    /// transition column per *row*, not per raw byte.
    fn row_of_symbol(&self, symbol: u8) -> u32 {
        u32::from(symbol)
    }

    /// Number of distinct match-row indices
    /// ([`row_of_symbol`](Self::row_of_symbol) is always `< alphabet_rows`):
    /// 256 for byte plans, `num_codes + 1` for encoded plans (one extra
    /// row for out-of-codebook symbols).
    fn alphabet_rows(&self) -> usize {
        ALPHABET
    }
}

/// The paired-symbol flavour of [`ExecutionPlan`]: the per-cycle row
/// interface of a 2-stride plan, factored per half. A pair cycle's
/// activation is `first[a] & second[b] & enabled`, so the plan exposes
/// each half's match rows (and the *first* half's precompiled
/// start-match rows, `first[a] & all_input`) with their word summaries;
/// the engines fuse the three-way AND per dirty word, skipping 64-state
/// words either half's summary rules out — the strided form of CAMA's
/// selective precharge.
///
/// Implemented by [`CompiledStridedAutomaton`] (halves indexed by raw
/// bytes) and [`CompiledEncodedStridedAutomaton`] (each half routed
/// through its own codebook), so a single paired stepping loop in
/// `cama-sim` — and the same [`ShardedAutomaton`] shell — drives both.
pub trait StridedPlan: PlanBase {
    /// The first-half match vector: states whose first class accepts
    /// `a`, as a contiguous [`Row`] into the flat table.
    fn first_vector(&self, a: u8) -> Row<'_>;

    /// The word-level summary of [`first_vector`](Self::first_vector).
    fn first_any(&self, a: u8) -> &[u64];

    /// The second-half match vector: states whose second class accepts
    /// `b`.
    fn second_vector(&self, b: u8) -> Row<'_>;

    /// The word-level summary of [`second_vector`](Self::second_vector).
    fn second_any(&self, b: u8) -> &[u64];

    /// The statically matched start states for first symbol `a`:
    /// `first_vector(a) & all_input_mask()`. ANDed with
    /// [`second_vector`](Self::second_vector) this is the pair cycle's
    /// start injection.
    fn first_start_match(&self, a: u8) -> Row<'_>;

    /// The word-level summary of
    /// [`first_start_match`](Self::first_start_match).
    fn first_start_match_any(&self, a: u8) -> &[u64];

    /// The `(code, phase)` of a reporting state (O(1), packed).
    ///
    /// # Panics
    ///
    /// May panic or return arbitrary data if `state` is not reporting;
    /// callers must consult [`report_mask`](PlanBase::report_mask) first.
    fn report_pair_unchecked(&self, state: usize) -> (u32, ReportPhase);
}

impl CompiledAutomaton {
    /// Compiles `nfa` into its dense execution plan.
    pub fn compile(nfa: &Nfa) -> CompiledAutomaton {
        let n = nfa.len();
        let mut match_table = vec![BitSet::new(n); ALPHABET];
        for (i, ste) in nfa.stes().iter().enumerate() {
            for symbol in ste.class.iter() {
                match_table[symbol as usize].insert(i);
            }
        }
        let (all_input, start_of_data) = build_start_masks(nfa);
        let (succ_offsets, successors) = build_csr(nfa);
        let reports = build_reports(nfa);
        let derived = derive_rows(&match_table, &all_input, &start_of_data);

        CompiledAutomaton {
            len: n,
            name: nfa.name().to_string(),
            match_rows: derived.match_rows,
            start_rows: derived.start_rows,
            succ_offsets,
            successors,
            all_input,
            all_input_any: derived.all_input_any,
            start_of_data,
            start_of_data_any: derived.start_of_data_any,
            reports,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan has no states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The compiled automaton's name (inherited from the NFA).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of activation edges.
    pub fn num_edges(&self) -> usize {
        self.successors.len()
    }

    /// The match vector of `symbol`: every state accepting it, as a
    /// contiguous row the SIMD kernels can stream.
    pub fn match_vector(&self, symbol: u8) -> Row<'_> {
        self.match_rows.row(symbol as usize)
    }

    /// The word-level summary of [`match_vector`](Self::match_vector):
    /// bit `j` set iff word `j` of the match vector is nonzero.
    pub fn match_any(&self, symbol: u8) -> &[u64] {
        self.match_rows.summary(symbol as usize)
    }

    /// The statically matched start states for `symbol`:
    /// `match_vector(symbol) & all_input_mask()`.
    pub fn start_match(&self, symbol: u8) -> Row<'_> {
        self.start_rows.row(symbol as usize)
    }

    /// The word-level summary of [`start_match`](Self::start_match).
    pub fn start_match_any(&self, symbol: u8) -> &[u64] {
        self.start_rows.summary(symbol as usize)
    }

    /// The word-level summary of [`all_input_mask`](Self::all_input_mask).
    pub fn all_input_any(&self) -> &[u64] {
        &self.all_input_any
    }

    /// The word-level summary of
    /// [`start_of_data_mask`](Self::start_of_data_mask).
    pub fn start_of_data_any(&self) -> &[u64] {
        &self.start_of_data_any
    }

    /// CSR successor slice of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn successors(&self, state: usize) -> &[u32] {
        &self.successors[self.succ_offsets[state] as usize..self.succ_offsets[state + 1] as usize]
    }

    /// States statically enabled on every cycle (`all-input` starts).
    pub fn all_input_mask(&self) -> &BitSet {
        &self.all_input
    }

    /// States enabled only on the first cycle (`start-of-data` starts).
    pub fn start_of_data_mask(&self) -> &BitSet {
        &self.start_of_data
    }

    /// The mask of reporting states.
    pub fn report_mask(&self) -> &BitSet {
        self.reports.mask()
    }

    /// The report code of `state`, or `None` if it does not report.
    pub fn report_code(&self, state: usize) -> Option<u32> {
        self.reports.code_checked(state)
    }

    /// The report code of a state known to report (the fast path used
    /// inside the cycle loop, O(1) via the packed rank directory).
    ///
    /// # Panics
    ///
    /// May panic or return an arbitrary code if `state` is not
    /// reporting; callers must consult [`report_mask`](Self::report_mask)
    /// first.
    pub fn report_code_unchecked(&self, state: usize) -> u32 {
        self.reports.code(state)
    }

    /// Computes one cycle's enable vector into `out`:
    /// `dynamic ∪ all-input starts (if injecting) ∪ start-of-data starts
    /// (if first cycle)` — all word-level. This is the materialized form
    /// of the enable set for plan consumers; the engines in `cama-sim`
    /// fuse the same union into their per-word visit loop instead.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ from [`len`](Self::len).
    pub fn enabled_into(
        &self,
        dynamic: &BitSet,
        inject_starts: bool,
        first_cycle: bool,
        out: &mut BitSet,
    ) {
        out.copy_from(dynamic);
        if inject_starts {
            out.union_with(&self.all_input);
        }
        if first_cycle {
            out.union_with(&self.start_of_data);
        }
    }
}

impl PlanBase for CompiledAutomaton {
    fn len(&self) -> usize {
        CompiledAutomaton::len(self)
    }

    fn num_edges(&self) -> usize {
        CompiledAutomaton::num_edges(self)
    }

    fn all_input_mask(&self) -> &BitSet {
        CompiledAutomaton::all_input_mask(self)
    }

    fn start_of_data_mask(&self) -> &BitSet {
        CompiledAutomaton::start_of_data_mask(self)
    }

    fn start_of_data_any(&self) -> &[u64] {
        CompiledAutomaton::start_of_data_any(self)
    }

    fn report_mask(&self) -> &BitSet {
        CompiledAutomaton::report_mask(self)
    }

    fn successors(&self, state: usize) -> &[u32] {
        CompiledAutomaton::successors(self, state)
    }
}

impl ExecutionPlan for CompiledAutomaton {
    fn match_vector(&self, symbol: u8) -> Row<'_> {
        CompiledAutomaton::match_vector(self, symbol)
    }

    fn match_any(&self, symbol: u8) -> &[u64] {
        CompiledAutomaton::match_any(self, symbol)
    }

    fn start_match(&self, symbol: u8) -> Row<'_> {
        CompiledAutomaton::start_match(self, symbol)
    }

    fn start_match_any(&self, symbol: u8) -> &[u64] {
        CompiledAutomaton::start_match_any(self, symbol)
    }

    fn report_code_unchecked(&self, state: usize) -> u32 {
        CompiledAutomaton::report_code_unchecked(self, state)
    }
}

/// The encoding-aware execution plan: match rows built from an encoding
/// codebook instead of raw 8-bit symbols.
///
/// CAMA's datapath never matches raw bytes: the 256-entry input encoder
/// maps each streaming symbol to a learned code, and the CAM arrays
/// store per-state *entries* (possibly negated) matched against that
/// code. This plan is the software form of exactly that datapath:
///
/// * `encoder` is the 256-entry symbol → code-row lookup (the input
///   encoder image). Symbols outside the codebook domain map to the
///   reserved out-of-domain row.
/// * each match row is derived by evaluating every state's stored CAM
///   entries — including the Negation Optimization inverter — against
///   one code, at compile time (the CAM search result for that code);
/// * everything else (CSR adjacency, packed report metadata,
///   `start_match` rows, two-level word summaries, start masks) has the
///   same shape as [`CompiledAutomaton`], so the identical word-level
///   stepping loop executes it.
///
/// Construction is decoupled from any concrete encoding toolchain:
/// [`compile_with`](CompiledEncodedAutomaton::compile_with) takes the
/// codebook as closures. `cama_encoding::EncodingPlan::compile` is the
/// canonical caller, handing in its codebook lookup and per-state
/// [`EncodedState`] matchers; execution is then bit-identical to the
/// byte plan exactly when the encoding is exact (`verify_exact`) —
/// which is what the differential harnesses in `tests/property.rs`
/// assert for every scheme.
///
/// [`EncodedState`]: https://docs.rs/cama_encoding
#[derive(Clone, Debug)]
pub struct CompiledEncodedAutomaton {
    len: usize,
    name: String,
    /// Code length in bits (the width of the simulated search word).
    code_len: usize,
    /// Number of in-domain code rows; row `num_codes` is the reserved
    /// out-of-domain row.
    num_codes: usize,
    /// Symbol → row index (the input-encoder image).
    encoder: Vec<u16>,
    /// `match_rows[row]`: all states whose CAM image matches the row's
    /// code (rows `0..num_codes`), or the reserved word (last row).
    match_rows: RowTable,
    /// `start_rows[row] = match_rows[row] & all_input`.
    start_rows: RowTable,
    succ_offsets: Vec<u32>,
    successors: Vec<u32>,
    all_input: BitSet,
    all_input_any: Vec<u64>,
    start_of_data: BitSet,
    start_of_data_any: Vec<u64>,
    reports: ReportTable,
    /// CAM entries stored per state (the quantity the energy model
    /// charges for enabled states).
    entries_of: Vec<u32>,
    /// States whose row output is inverted (Negation Optimization).
    negated: BitSet,
}

impl CompiledEncodedAutomaton {
    /// Compiles `nfa` against a codebook described by closures:
    ///
    /// * `encode(symbol)` — the input-encoder lookup: the code row of a
    ///   symbol (`0..num_codes`), or `None` for the reserved
    ///   out-of-domain word;
    /// * `matches(state, row)` — the CAM search outcome: whether the
    ///   state's stored entries (inverter included) match the code of
    ///   `row`, where `None` is the reserved word;
    /// * `entries(state)` — CAM entries the state stores;
    /// * `negated(state)` — whether the state's row output is inverted.
    ///
    /// `code_len` is the code width in bits (recorded for reporting).
    ///
    /// # Panics
    ///
    /// Panics if `encode` returns a row at or beyond `num_codes`, or if
    /// `num_codes` exceeds `u16::MAX`.
    pub fn compile_with(
        nfa: &Nfa,
        code_len: usize,
        num_codes: usize,
        encode: impl Fn(u8) -> Option<u16>,
        matches: impl Fn(usize, Option<u16>) -> bool,
        entries: impl Fn(usize) -> u32,
        negated: impl Fn(usize) -> bool,
    ) -> CompiledEncodedAutomaton {
        assert!(num_codes < u16::MAX as usize, "too many codes");
        let n = nfa.len();
        let reserved = num_codes as u16;
        let encoder: Vec<u16> = (0..ALPHABET)
            .map(|symbol| match encode(symbol as u8) {
                Some(row) => {
                    assert!(
                        (row as usize) < num_codes,
                        "code row {row} out of range (num_codes {num_codes})"
                    );
                    row
                }
                None => reserved,
            })
            .collect();

        let mut match_table = vec![BitSet::new(n); num_codes + 1];
        let mut entries_of = Vec::with_capacity(n);
        let mut negated_mask = BitSet::new(n);
        for state in 0..n {
            for (row, vector) in match_table.iter_mut().enumerate() {
                let code = (row < num_codes).then_some(row as u16);
                if matches(state, code) {
                    vector.insert(state);
                }
            }
            entries_of.push(entries(state));
            if negated(state) {
                negated_mask.insert(state);
            }
        }

        let (all_input, start_of_data) = build_start_masks(nfa);
        let (succ_offsets, successors) = build_csr(nfa);
        let reports = build_reports(nfa);
        let derived = derive_rows(&match_table, &all_input, &start_of_data);

        CompiledEncodedAutomaton {
            len: n,
            name: nfa.name().to_string(),
            code_len,
            num_codes,
            encoder,
            match_rows: derived.match_rows,
            start_rows: derived.start_rows,
            succ_offsets,
            successors,
            all_input,
            all_input_any: derived.all_input_any,
            start_of_data,
            start_of_data_any: derived.start_of_data_any,
            reports,
            entries_of,
            negated: negated_mask,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan has no states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The compiled automaton's name (inherited from the NFA).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The code length in bits.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// Number of distinct in-domain code rows (the reserved
    /// out-of-domain row is extra).
    pub fn num_codes(&self) -> usize {
        self.num_codes
    }

    /// The input-encoder lookup: the code row `symbol` drives, or `None`
    /// when the symbol is outside the codebook domain. Such symbols
    /// select the reserved row, which holds exactly the states whose
    /// inverted (negated) output accepts the no-entry-matches search
    /// word; the encoding toolchain gives any automaton with negated
    /// states a full 256-symbol domain, so there the reserved row is
    /// only ever selected when it is empty (the symbol matches nothing).
    pub fn encode(&self, symbol: u8) -> Option<u16> {
        let row = self.encoder[symbol as usize];
        ((row as usize) < self.num_codes).then_some(row)
    }

    /// The match row index `symbol` selects (the reserved row for
    /// out-of-domain symbols) — the per-cycle encoder access.
    pub fn row_of(&self, symbol: u8) -> usize {
        self.encoder[symbol as usize] as usize
    }

    /// The match vector of one code row (`num_codes` selects the
    /// reserved out-of-domain row).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_match_vector(&self, row: usize) -> Row<'_> {
        self.match_rows.row(row)
    }

    /// CAM entries stored by `state` — taken from the actual encoded
    /// image, which is what the energy model charges per enabled state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn entries_of(&self, state: usize) -> u32 {
        self.entries_of[state]
    }

    /// Per-state slot weights for the architecture mapper/energy model:
    /// the stored entry count, at least 1 (an empty image still occupies
    /// a row).
    pub fn entry_weights(&self) -> Vec<u32> {
        self.entries_of.iter().map(|&e| e.max(1)).collect()
    }

    /// Total CAM entries across all states.
    pub fn total_entries(&self) -> usize {
        self.entries_of.iter().map(|&e| e as usize).sum()
    }

    /// Whether `state`'s row output is inverted (Negation Optimization).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn is_negated(&self, state: usize) -> bool {
        self.negated.contains(state)
    }

    /// Number of states using the NO inverter.
    pub fn negated_states(&self) -> usize {
        self.negated.iter().count()
    }

    /// Total number of activation edges.
    pub fn num_edges(&self) -> usize {
        self.successors.len()
    }

    /// The match vector of `symbol`, through the encoder lookup.
    pub fn match_vector(&self, symbol: u8) -> Row<'_> {
        self.match_rows.row(self.encoder[symbol as usize] as usize)
    }

    /// The word-level summary of [`match_vector`](Self::match_vector).
    pub fn match_any(&self, symbol: u8) -> &[u64] {
        self.match_rows
            .summary(self.encoder[symbol as usize] as usize)
    }

    /// The statically matched start states for `symbol`.
    pub fn start_match(&self, symbol: u8) -> Row<'_> {
        self.start_rows.row(self.encoder[symbol as usize] as usize)
    }

    /// The word-level summary of [`start_match`](Self::start_match).
    pub fn start_match_any(&self, symbol: u8) -> &[u64] {
        self.start_rows
            .summary(self.encoder[symbol as usize] as usize)
    }

    /// States statically enabled on every cycle (`all-input` starts).
    pub fn all_input_mask(&self) -> &BitSet {
        &self.all_input
    }

    /// The word-level summary of [`all_input_mask`](Self::all_input_mask).
    pub fn all_input_any(&self) -> &[u64] {
        &self.all_input_any
    }

    /// States enabled only on the first cycle (`start-of-data` starts).
    pub fn start_of_data_mask(&self) -> &BitSet {
        &self.start_of_data
    }

    /// The word-level summary of
    /// [`start_of_data_mask`](Self::start_of_data_mask).
    pub fn start_of_data_any(&self) -> &[u64] {
        &self.start_of_data_any
    }

    /// The mask of reporting states.
    pub fn report_mask(&self) -> &BitSet {
        self.reports.mask()
    }

    /// The report code of `state`, or `None` if it does not report.
    pub fn report_code(&self, state: usize) -> Option<u32> {
        self.reports.code_checked(state)
    }

    /// The report code of a state known to report (O(1), packed).
    ///
    /// # Panics
    ///
    /// May panic or return an arbitrary code if `state` is not
    /// reporting.
    pub fn report_code_unchecked(&self, state: usize) -> u32 {
        self.reports.code(state)
    }

    /// CSR successor slice of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn successors(&self, state: usize) -> &[u32] {
        &self.successors[self.succ_offsets[state] as usize..self.succ_offsets[state + 1] as usize]
    }
}

impl PlanBase for CompiledEncodedAutomaton {
    fn len(&self) -> usize {
        CompiledEncodedAutomaton::len(self)
    }

    fn num_edges(&self) -> usize {
        CompiledEncodedAutomaton::num_edges(self)
    }

    fn all_input_mask(&self) -> &BitSet {
        CompiledEncodedAutomaton::all_input_mask(self)
    }

    fn start_of_data_mask(&self) -> &BitSet {
        CompiledEncodedAutomaton::start_of_data_mask(self)
    }

    fn start_of_data_any(&self) -> &[u64] {
        CompiledEncodedAutomaton::start_of_data_any(self)
    }

    fn report_mask(&self) -> &BitSet {
        CompiledEncodedAutomaton::report_mask(self)
    }

    fn successors(&self, state: usize) -> &[u32] {
        CompiledEncodedAutomaton::successors(self, state)
    }
}

impl ExecutionPlan for CompiledEncodedAutomaton {
    fn match_vector(&self, symbol: u8) -> Row<'_> {
        CompiledEncodedAutomaton::match_vector(self, symbol)
    }

    fn match_any(&self, symbol: u8) -> &[u64] {
        CompiledEncodedAutomaton::match_any(self, symbol)
    }

    fn start_match(&self, symbol: u8) -> Row<'_> {
        CompiledEncodedAutomaton::start_match(self, symbol)
    }

    fn start_match_any(&self, symbol: u8) -> &[u64] {
        CompiledEncodedAutomaton::start_match_any(self, symbol)
    }

    fn report_code_unchecked(&self, state: usize) -> u32 {
        CompiledEncodedAutomaton::report_code_unchecked(self, state)
    }

    fn row_of_symbol(&self, symbol: u8) -> u32 {
        u32::from(self.encoder[symbol as usize])
    }

    fn alphabet_rows(&self) -> usize {
        // Codes 0..num_codes plus the reserved out-of-codebook row.
        self.num_codes + 1
    }
}

/// The dense execution plan compiled from a [`StridedNfa`].
///
/// A 2-stride state accepts the pair `(a, b)` when its first class
/// contains `a` and its second class contains `b`, so the pair match
/// vector factors into two 256-entry tables combined with one AND:
/// `first_table[a] & second_table[b]`. This avoids the 64 Ki-entry
/// squared-alphabet table while keeping the step word-level.
///
/// Like the byte plan, every table carries a one-bit-per-word summary
/// hierarchy and the first half's start-match rows
/// (`first_table[a] & all_input`) are precompiled, so the strided
/// engines visit only 64-state words both halves *and* an enable source
/// mark — the 2-stride form of CAMA's selective precharge
/// ([`StridedPlan`] is the trait the engines consume).
#[derive(Clone, Debug)]
pub struct CompiledStridedAutomaton {
    len: usize,
    name: String,
    /// Flat cache-blocked per-byte tables of the two halves, each row
    /// carrying its one-bit-per-word nonzero summary.
    first_rows: RowTable,
    second_rows: RowTable,
    /// `first_start_rows[a] = first_rows[a] & all_input`: the pair
    /// cycle's start injection, pending the AND with `second_rows[b]`.
    first_start_rows: RowTable,
    succ_offsets: Vec<u32>,
    successors: Vec<u32>,
    all_input: BitSet,
    all_input_any: Vec<u64>,
    start_of_data: BitSet,
    start_of_data_any: Vec<u64>,
    reports: ReportTable,
    /// Phase of each reporting state, rank-indexed like the codes.
    phases: Vec<ReportPhase>,
}

impl CompiledStridedAutomaton {
    /// Compiles a strided automaton into its dense execution plan.
    pub fn compile(nfa: &StridedNfa) -> CompiledStridedAutomaton {
        let n = nfa.len();
        let mut first_table = vec![BitSet::new(n); ALPHABET];
        let mut second_table = vec![BitSet::new(n); ALPHABET];
        let mut all_input = BitSet::new(n);
        let mut start_of_data = BitSet::new(n);
        let mut phases = Vec::new();
        for (i, state) in nfa.states().iter().enumerate() {
            for symbol in state.first.iter() {
                first_table[symbol as usize].insert(i);
            }
            for symbol in state.second.iter() {
                second_table[symbol as usize].insert(i);
            }
            match state.start {
                StartKind::AllInput => all_input.insert(i),
                StartKind::StartOfData => start_of_data.insert(i),
                StartKind::None => {}
            }
            if let Some((_, phase)) = state.report {
                phases.push(phase);
            }
        }

        let mut succ_offsets = Vec::with_capacity(n + 1);
        let mut successors = Vec::with_capacity(nfa.num_edges());
        succ_offsets.push(0);
        for i in 0..n {
            successors.extend_from_slice(nfa.successors(i));
            succ_offsets.push(successors.len() as u32);
        }

        let reports = ReportTable::build(
            n,
            nfa.states()
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.report.map(|(code, _)| (i, code))),
        );

        // The first half gets the same derived acceleration rows as a
        // byte plan (start-match rows + summaries); the second half only
        // needs its rows and nonzero-word summaries.
        let derived = derive_rows(&first_table, &all_input, &start_of_data);
        let second_rows = RowTable::from_rows(n, &second_table);

        CompiledStridedAutomaton {
            len: n,
            name: nfa.name().to_string(),
            first_rows: derived.match_rows,
            second_rows,
            first_start_rows: derived.start_rows,
            succ_offsets,
            successors,
            all_input,
            all_input_any: derived.all_input_any,
            start_of_data,
            start_of_data_any: derived.start_of_data_any,
            reports,
            phases,
        }
    }

    /// Number of strided states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan has no states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The compiled automaton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of activation edges.
    pub fn num_edges(&self) -> usize {
        self.successors.len()
    }

    /// The first-symbol match vector: states whose first class accepts
    /// `symbol`.
    pub fn first_table(&self, symbol: u8) -> Row<'_> {
        self.first_rows.row(symbol as usize)
    }

    /// The second-symbol match vector: states whose second class accepts
    /// `symbol`.
    pub fn second_table(&self, symbol: u8) -> Row<'_> {
        self.second_rows.row(symbol as usize)
    }

    /// The word-level summary of [`first_table`](Self::first_table).
    pub fn first_table_any(&self, symbol: u8) -> &[u64] {
        self.first_rows.summary(symbol as usize)
    }

    /// The word-level summary of [`second_table`](Self::second_table).
    pub fn second_table_any(&self, symbol: u8) -> &[u64] {
        self.second_rows.summary(symbol as usize)
    }

    /// The word-level summary of [`all_input_mask`](Self::all_input_mask).
    pub fn all_input_any(&self) -> &[u64] {
        &self.all_input_any
    }

    /// Computes the pair match vector `first_table[a] & second_table[b]`
    /// into `out` — the materialized form for plan consumers; the
    /// strided engine fuses the same AND into its per-word step.
    ///
    /// `out` may have any capacity: it is resized (reallocated) to
    /// [`len`](Self::len) when it does not match, so plan consumers can
    /// reuse one scratch set across plans of different sizes without a
    /// panic surfacing from deep inside the step. Pass a correctly
    /// sized set to keep the call allocation-free.
    pub fn match_pair_into(&self, a: u8, b: u8, out: &mut BitSet) {
        if out.len() != self.len {
            *out = BitSet::new(self.len);
        }
        kernel::and2_into(
            self.first_table(a).words(),
            self.second_table(b).words(),
            out.as_words_mut(),
        );
    }

    /// Computes the pair cycle's *active* vector
    /// `first_table[a] & second_table[b] & enabled` into `out` (the
    /// materialized form of the engines' fused step, built on
    /// [`BitSet::and3_into`]). `out` is resized like
    /// [`match_pair_into`](Self::match_pair_into).
    ///
    /// # Panics
    ///
    /// Panics if `enabled`'s capacity differs from [`len`](Self::len).
    pub fn match_pair_enabled_into(&self, a: u8, b: u8, enabled: &BitSet, out: &mut BitSet) {
        if out.len() != self.len {
            *out = BitSet::new(self.len);
        }
        assert_eq!(enabled.len(), self.len, "bitset length mismatch");
        kernel::and3_into(
            self.first_table(a).words(),
            self.second_table(b).words(),
            enabled.as_words(),
            out.as_words_mut(),
        );
    }

    /// CSR successor slice of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn successors(&self, state: usize) -> &[u32] {
        &self.successors[self.succ_offsets[state] as usize..self.succ_offsets[state + 1] as usize]
    }

    /// Strided states statically enabled on every pair cycle.
    pub fn all_input_mask(&self) -> &BitSet {
        &self.all_input
    }

    /// Strided states enabled only on the first pair cycle.
    pub fn start_of_data_mask(&self) -> &BitSet {
        &self.start_of_data
    }

    /// The mask of reporting states.
    pub fn report_mask(&self) -> &BitSet {
        self.reports.mask()
    }

    /// The `(code, phase)` of a reporting state (O(1), packed).
    ///
    /// # Panics
    ///
    /// May panic or return arbitrary data if `state` is not reporting.
    pub fn report_unchecked(&self, state: usize) -> (u32, ReportPhase) {
        let rank = self.reports.rank(state);
        (self.reports.codes[rank], self.phases[rank])
    }
}

impl PlanBase for CompiledStridedAutomaton {
    fn len(&self) -> usize {
        CompiledStridedAutomaton::len(self)
    }

    fn num_edges(&self) -> usize {
        CompiledStridedAutomaton::num_edges(self)
    }

    fn all_input_mask(&self) -> &BitSet {
        CompiledStridedAutomaton::all_input_mask(self)
    }

    fn start_of_data_mask(&self) -> &BitSet {
        CompiledStridedAutomaton::start_of_data_mask(self)
    }

    fn start_of_data_any(&self) -> &[u64] {
        &self.start_of_data_any
    }

    fn report_mask(&self) -> &BitSet {
        CompiledStridedAutomaton::report_mask(self)
    }

    fn successors(&self, state: usize) -> &[u32] {
        CompiledStridedAutomaton::successors(self, state)
    }
}

impl StridedPlan for CompiledStridedAutomaton {
    fn first_vector(&self, a: u8) -> Row<'_> {
        self.first_rows.row(a as usize)
    }

    fn first_any(&self, a: u8) -> &[u64] {
        self.first_rows.summary(a as usize)
    }

    fn second_vector(&self, b: u8) -> Row<'_> {
        self.second_rows.row(b as usize)
    }

    fn second_any(&self, b: u8) -> &[u64] {
        self.second_rows.summary(b as usize)
    }

    fn first_start_match(&self, a: u8) -> Row<'_> {
        self.first_start_rows.row(a as usize)
    }

    fn first_start_match_any(&self, a: u8) -> &[u64] {
        self.first_start_rows.summary(a as usize)
    }

    fn report_pair_unchecked(&self, state: usize) -> (u32, ReportPhase) {
        CompiledStridedAutomaton::report_unchecked(self, state)
    }
}

/// One half of an encoded 2-stride codebook, described as closures —
/// how [`CompiledEncodedStridedAutomaton::compile_with`] receives the
/// encoding toolchain's output without `cama-core` depending on any
/// concrete toolchain (mirroring
/// [`CompiledEncodedAutomaton::compile_with`], once per half):
///
/// * `encode(symbol)` — the half's input-encoder lookup: the code row
///   of a symbol (`0..num_codes`), or `None` for the reserved
///   out-of-domain word;
/// * `matches(state, row)` — the CAM search outcome of the half: does
///   the state's stored entries for this half (inverter included)
///   match the code of `row` (`None` = reserved word);
/// * `entries(state)` — CAM entries the state stores for this half;
/// * `negated(state)` — whether the half's row output is inverted.
pub struct StridedHalfSpec<'a> {
    /// Code width of this half in bits.
    pub code_len: usize,
    /// Number of in-domain code rows of this half.
    pub num_codes: usize,
    /// The input-encoder lookup.
    pub encode: Box<dyn Fn(u8) -> Option<u16> + 'a>,
    /// The per-(state, row) CAM search outcome.
    pub matches: Box<dyn Fn(usize, Option<u16>) -> bool + 'a>,
    /// Entries stored per state for this half.
    pub entries: Box<dyn Fn(usize) -> u32 + 'a>,
    /// Whether a state's row output is inverted for this half.
    pub negated: Box<dyn Fn(usize) -> bool + 'a>,
}

/// One compiled half of a [`CompiledEncodedStridedAutomaton`]: the
/// half's encoder image and its code-indexed match rows (last row
/// reserved for out-of-domain symbols).
#[derive(Clone, Debug)]
struct EncodedStridedHalf {
    code_len: usize,
    num_codes: usize,
    /// Symbol → row index (the half's input-encoder image).
    encoder: Vec<u16>,
    /// `match_rows[row]`: states whose stored entries for this half
    /// match the row's code (rows `0..num_codes`), or the reserved word.
    match_rows: RowTable,
    entries_of: Vec<u32>,
    negated: BitSet,
}

impl EncodedStridedHalf {
    /// Builds the half, also returning the unpacked match rows so the
    /// caller can derive the start-match table from the first half.
    fn build(n: usize, spec: &StridedHalfSpec<'_>) -> (EncodedStridedHalf, Vec<BitSet>) {
        assert!(spec.num_codes < u16::MAX as usize, "too many codes");
        let reserved = spec.num_codes as u16;
        let encoder: Vec<u16> = (0..ALPHABET)
            .map(|symbol| match (spec.encode)(symbol as u8) {
                Some(row) => {
                    assert!(
                        (row as usize) < spec.num_codes,
                        "code row {row} out of range (num_codes {})",
                        spec.num_codes
                    );
                    row
                }
                None => reserved,
            })
            .collect();
        let mut match_table = vec![BitSet::new(n); spec.num_codes + 1];
        let mut entries_of = Vec::with_capacity(n);
        let mut negated = BitSet::new(n);
        for state in 0..n {
            for (row, vector) in match_table.iter_mut().enumerate() {
                let code = (row < spec.num_codes).then_some(row as u16);
                if (spec.matches)(state, code) {
                    vector.insert(state);
                }
            }
            entries_of.push((spec.entries)(state));
            if (spec.negated)(state) {
                negated.insert(state);
            }
        }
        let half = EncodedStridedHalf {
            code_len: spec.code_len,
            num_codes: spec.num_codes,
            encoder,
            match_rows: RowTable::from_rows(n, &match_table),
            entries_of,
            negated,
        };
        (half, match_table)
    }

    fn row_of(&self, symbol: u8) -> usize {
        self.encoder[symbol as usize] as usize
    }
}

/// The encoding-aware 2-stride execution plan: each half of the pair
/// datapath gets its own codebook (per-half input encoder and
/// code-indexed match rows, with a reserved out-of-domain row per
/// half), and a pair cycle ANDs the two halves' rows — the software
/// form of CAMA's two-segment match CAM searching the concatenated
/// per-half codes (cf. the banked arrays of Jarollahi et al.'s
/// clustered low-power CAM).
///
/// Each half's rows are derived at compile time by searching that
/// half's codes against every state's stored entries for the half —
/// Negation Optimization inverters included — so the functional engine
/// exercises exactly the per-half entry layout the energy model
/// charges. Everything else (CSR adjacency, packed `(code, phase)`
/// report metadata, precompiled first-half `start_match` rows, word
/// summaries) has the same shape as [`CompiledStridedAutomaton`], so
/// the identical paired stepping loop executes both — bit-identically
/// whenever each half's encoding is exact, which the differential
/// harnesses in `tests/property.rs` assert per scheme.
///
/// Construction is closure-based
/// ([`compile_with`](CompiledEncodedStridedAutomaton::compile_with),
/// one [`StridedHalfSpec`] per half);
/// `cama_encoding::StridedEncoding::compile` is the canonical caller.
#[derive(Clone, Debug)]
pub struct CompiledEncodedStridedAutomaton {
    len: usize,
    name: String,
    first: EncodedStridedHalf,
    second: EncodedStridedHalf,
    /// `first_start_rows[row] = first.match_rows[row] & all_input`.
    first_start_rows: RowTable,
    succ_offsets: Vec<u32>,
    successors: Vec<u32>,
    all_input: BitSet,
    all_input_any: Vec<u64>,
    start_of_data: BitSet,
    start_of_data_any: Vec<u64>,
    reports: ReportTable,
    phases: Vec<ReportPhase>,
}

impl CompiledEncodedStridedAutomaton {
    /// Compiles `nfa` against one codebook per half.
    ///
    /// # Panics
    ///
    /// Panics if a half's `encode` returns a row at or beyond its
    /// `num_codes`, or if a half has more than `u16::MAX` codes.
    pub fn compile_with(
        nfa: &StridedNfa,
        first: StridedHalfSpec<'_>,
        second: StridedHalfSpec<'_>,
    ) -> CompiledEncodedStridedAutomaton {
        let n = nfa.len();
        let (first, first_table) = EncodedStridedHalf::build(n, &first);
        let (second, _) = EncodedStridedHalf::build(n, &second);

        let mut all_input = BitSet::new(n);
        let mut start_of_data = BitSet::new(n);
        let mut phases = Vec::new();
        for (i, state) in nfa.states().iter().enumerate() {
            match state.start {
                StartKind::AllInput => all_input.insert(i),
                StartKind::StartOfData => start_of_data.insert(i),
                StartKind::None => {}
            }
            if let Some((_, phase)) = state.report {
                phases.push(phase);
            }
        }

        let mut succ_offsets = Vec::with_capacity(n + 1);
        let mut successors = Vec::with_capacity(nfa.num_edges());
        succ_offsets.push(0);
        for i in 0..n {
            successors.extend_from_slice(nfa.successors(i));
            succ_offsets.push(successors.len() as u32);
        }

        let reports = ReportTable::build(
            n,
            nfa.states()
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.report.map(|(code, _)| (i, code))),
        );

        let derived = derive_rows(&first_table, &all_input, &start_of_data);

        CompiledEncodedStridedAutomaton {
            len: n,
            name: nfa.name().to_string(),
            first,
            second,
            first_start_rows: derived.start_rows,
            succ_offsets,
            successors,
            all_input,
            all_input_any: derived.all_input_any,
            start_of_data,
            start_of_data_any: derived.start_of_data_any,
            reports,
            phases,
        }
    }

    /// Number of strided states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan has no states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The compiled automaton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of activation edges.
    pub fn num_edges(&self) -> usize {
        self.successors.len()
    }

    /// The two halves' code lengths in bits (the simulated search word
    /// is their concatenation).
    pub fn code_lens(&self) -> (usize, usize) {
        (self.first.code_len, self.second.code_len)
    }

    /// The two halves' in-domain code-row counts (each half has one
    /// extra reserved out-of-domain row).
    pub fn num_codes(&self) -> (usize, usize) {
        (self.first.num_codes, self.second.num_codes)
    }

    /// The first half's input-encoder lookup: the code row `a` drives,
    /// or `None` when `a` is outside the half's codebook domain.
    pub fn encode_first(&self, a: u8) -> Option<u16> {
        let row = self.first.encoder[a as usize];
        ((row as usize) < self.first.num_codes).then_some(row)
    }

    /// The second half's input-encoder lookup.
    pub fn encode_second(&self, b: u8) -> Option<u16> {
        let row = self.second.encoder[b as usize];
        ((row as usize) < self.second.num_codes).then_some(row)
    }

    /// CAM entries stored by `state`, per half.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn half_entries_of(&self, state: usize) -> (u32, u32) {
        (self.first.entries_of[state], self.second.entries_of[state])
    }

    /// CAM entries `state` occupies in the two-segment match CAM: one
    /// concatenated entry per (first entry, second entry) combination,
    /// capped at the 64-entry per-state budget the strided mapper packs
    /// with (matching `cama_arch::strided_weights`).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn entries_of(&self, state: usize) -> u32 {
        let (f, s) = self.half_entries_of(state);
        (f.max(1) * s.max(1)).min(64)
    }

    /// Per-state slot weights for the strided mapper/energy model: the
    /// paired entry count of [`entries_of`](Self::entries_of), at least
    /// 1 per state.
    pub fn entry_weights(&self) -> Vec<u32> {
        (0..self.len).map(|s| self.entries_of(s).max(1)).collect()
    }

    /// Total paired CAM entries across all states.
    pub fn total_entries(&self) -> usize {
        (0..self.len).map(|s| self.entries_of(s) as usize).sum()
    }

    /// Number of states whose row output is inverted, per half.
    pub fn negated_states(&self) -> (usize, usize) {
        (
            self.first.negated.iter().count(),
            self.second.negated.iter().count(),
        )
    }

    /// Computes the pair match vector into `out`, resizing it like
    /// [`CompiledStridedAutomaton::match_pair_into`] — both halves run
    /// through their encoder lookups first.
    pub fn match_pair_into(&self, a: u8, b: u8, out: &mut BitSet) {
        if out.len() != self.len {
            *out = BitSet::new(self.len);
        }
        kernel::and2_into(
            self.first.match_rows.row(self.first.row_of(a)).words(),
            self.second.match_rows.row(self.second.row_of(b)).words(),
            out.as_words_mut(),
        );
    }

    /// CSR successor slice of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn successors(&self, state: usize) -> &[u32] {
        &self.successors[self.succ_offsets[state] as usize..self.succ_offsets[state + 1] as usize]
    }

    /// Strided states statically enabled on every pair cycle.
    pub fn all_input_mask(&self) -> &BitSet {
        &self.all_input
    }

    /// The word-level summary of [`all_input_mask`](Self::all_input_mask).
    pub fn all_input_any(&self) -> &[u64] {
        &self.all_input_any
    }

    /// Strided states enabled only on the first pair cycle.
    pub fn start_of_data_mask(&self) -> &BitSet {
        &self.start_of_data
    }

    /// The mask of reporting states.
    pub fn report_mask(&self) -> &BitSet {
        self.reports.mask()
    }

    /// The `(code, phase)` of a reporting state (O(1), packed).
    ///
    /// # Panics
    ///
    /// May panic or return arbitrary data if `state` is not reporting.
    pub fn report_unchecked(&self, state: usize) -> (u32, ReportPhase) {
        let rank = self.reports.rank(state);
        (self.reports.codes[rank], self.phases[rank])
    }
}

impl PlanBase for CompiledEncodedStridedAutomaton {
    fn len(&self) -> usize {
        CompiledEncodedStridedAutomaton::len(self)
    }

    fn num_edges(&self) -> usize {
        CompiledEncodedStridedAutomaton::num_edges(self)
    }

    fn all_input_mask(&self) -> &BitSet {
        CompiledEncodedStridedAutomaton::all_input_mask(self)
    }

    fn start_of_data_mask(&self) -> &BitSet {
        CompiledEncodedStridedAutomaton::start_of_data_mask(self)
    }

    fn start_of_data_any(&self) -> &[u64] {
        &self.start_of_data_any
    }

    fn report_mask(&self) -> &BitSet {
        CompiledEncodedStridedAutomaton::report_mask(self)
    }

    fn successors(&self, state: usize) -> &[u32] {
        CompiledEncodedStridedAutomaton::successors(self, state)
    }
}

impl StridedPlan for CompiledEncodedStridedAutomaton {
    fn first_vector(&self, a: u8) -> Row<'_> {
        self.first.match_rows.row(self.first.row_of(a))
    }

    fn first_any(&self, a: u8) -> &[u64] {
        self.first.match_rows.summary(self.first.row_of(a))
    }

    fn second_vector(&self, b: u8) -> Row<'_> {
        self.second.match_rows.row(self.second.row_of(b))
    }

    fn second_any(&self, b: u8) -> &[u64] {
        self.second.match_rows.summary(self.second.row_of(b))
    }

    fn first_start_match(&self, a: u8) -> Row<'_> {
        self.first_start_rows.row(self.first.row_of(a))
    }

    fn first_start_match_any(&self, a: u8) -> &[u64] {
        self.first_start_rows.summary(self.first.row_of(a))
    }

    fn report_pair_unchecked(&self, state: usize) -> (u32, ReportPhase) {
        CompiledEncodedStridedAutomaton::report_unchecked(self, state)
    }
}

/// The blow-up guard of [`CompiledDfa::determinize`]: subset
/// construction aborts — and the component stays NFA — the moment
/// either cap is exceeded. Both caps bound the *per-component* table;
/// a global cross-component memory budget is a selection-policy
/// concern (`crate::compile::DfaPolicy`), not a construction one, so
/// cached determinization outcomes stay deterministic under one budget
/// pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DfaBudget {
    /// Maximum subset states (the classic exponential-blow-up guard).
    pub max_states: usize,
    /// Maximum bytes of next-state table (`states × alphabet_rows × 4`),
    /// guarding wide-alphabet small-state blow-up too.
    pub max_table_bytes: usize,
}

impl Default for DfaBudget {
    fn default() -> Self {
        DfaBudget {
            max_states: 128,
            max_table_bytes: 256 * 1024,
        }
    }
}

/// A per-component deterministic fast path: the subset construction of
/// one self-contained [`Shard`]'s [`ExecutionPlan`], stepped with one
/// table load per input symbol instead of fused multi-word BitSet
/// sweeps.
///
/// A DFA state is an NFA *active set* under the sharded engine's exact
/// cycle semantics with starts injected every cycle (`chain == 1`):
/// state 0 is the empty set, and
/// `δ(S, row) = (succ(S) ∪ all_input) ∩ match[row]`. Cycle 0 — where
/// `start-of-data` states also inject — uses the separate
/// [`first`](CompiledDfa::first) column; it is only ever taken out of
/// state 0, because nothing has been fed yet. Each state carries its
/// precomputed member list (the active set — activity accounting),
/// report list (reporting members with codes — emitted verbatim, so
/// hybrid reports are bit-identical to NFA stepping), and dynamic list
/// (`succ(S)`, the enable set the *next* cycle sees — what the engine
/// writes through to its lane bitsets so suspend/resume, idle probes,
/// and observers keep reading truthful state).
///
/// Transition columns are indexed by *match row*
/// ([`ExecutionPlan::row_of_symbol`]): raw bytes for byte plans, encoder
/// codes for encoded plans, so an encoded component's table is
/// `states × (num_codes + 1)`, not `states × 256`.
///
/// # Examples
///
/// ```
/// use cama_core::compiled::{CompiledAutomaton, CompiledDfa, DfaBudget};
/// use cama_core::regex;
///
/// let nfa = regex::compile("ab+c")?;
/// let plan = CompiledAutomaton::compile(&nfa);
/// let dfa = CompiledDfa::determinize(&plan, &DfaBudget::default()).unwrap();
/// // State 0 is the empty active set; stepping is one table load.
/// let after_a = dfa.next(0, u32::from(b'a'));
/// assert_eq!(dfa.members(after_a).len(), 1);
/// # Ok::<(), cama_core::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct CompiledDfa {
    /// Transition-table row width ([`ExecutionPlan::alphabet_rows`]).
    alphabet: usize,
    /// Dense next-state table, `num_states × alphabet`.
    next: Vec<u32>,
    /// Cycle-0 transitions (start-of-data states inject), one per row.
    /// Only taken out of state 0: at cycle 0 nothing has been fed, so
    /// the lane is necessarily in state 0.
    first: Vec<u32>,
    /// CSR over states: members (the active set, sorted local ids).
    member_offsets: Vec<u32>,
    members: Vec<u32>,
    /// CSR over states: reporting members with their codes.
    report_offsets: Vec<u32>,
    report_locals: Vec<u32>,
    report_codes: Vec<u32>,
    /// CSR over states: `succ(S)`, sorted — the dynamic set the next
    /// cycle's enable vector contains.
    dynamic_offsets: Vec<u32>,
    dynamics: Vec<u32>,
    /// Sorted dynamic set → first constructed state with that `succ`
    /// set. Two states with equal `succ` sets are forward-equivalent
    /// (their own members/reports were already emitted), which is all a
    /// resumed suspended flow needs.
    resume: std::collections::HashMap<Vec<u32>, u32>,
    /// 64-state words spanned by the component (`ceil(len / 64)`).
    words: usize,
    /// Word-occupancy summary words (`ceil(words / 64)`).
    any_words: usize,
    /// Per-state packed active-set bits, `num_states × words` — the
    /// write-through fast path ORs these into the lane instead of
    /// looping over members, so a dense active set costs O(words), not
    /// O(states), per cycle.
    active_bits: Vec<u64>,
    /// Per-state occupancy summaries for `active_bits`,
    /// `num_states × any_words` (bit `w % 64` of summary word `w / 64`
    /// set iff active word `w` is non-zero).
    active_any: Vec<u64>,
    /// Per-state packed `succ(S)` bits, `num_states × words` — the
    /// next-cycle enable words the engine writes through to its lane.
    dynamic_bits: Vec<u64>,
    /// Occupancy summaries for `dynamic_bits`.
    dynamic_any: Vec<u64>,
}

impl CompiledDfa {
    /// Subset-constructs `plan` under `budget`, or `None` when the
    /// construction would exceed either cap (the component then stays
    /// on the NFA kernels) or the plan is empty.
    pub fn determinize<P: ExecutionPlan>(plan: &P, budget: &DfaBudget) -> Option<CompiledDfa> {
        let n = plan.len();
        if n == 0 {
            return None;
        }
        let rows = plan.alphabet_rows();
        let words = n.div_ceil(64);

        // One representative byte per reachable match row; rows no byte
        // maps to are unreachable at runtime (the engine always indexes
        // through `row_of_symbol`) and keep next-state 0.
        let mut rep_of_row: Vec<Option<u8>> = vec![None; rows];
        for byte in 0..=255u8 {
            let row = plan.row_of_symbol(byte) as usize;
            debug_assert!(row < rows, "row_of_symbol out of alphabet_rows");
            rep_of_row[row].get_or_insert(byte);
        }
        let reachable: Vec<(usize, Vec<u64>)> = rep_of_row
            .iter()
            .enumerate()
            .filter_map(|(row, rep)| {
                rep.map(|byte| (row, plan.match_vector(byte).words().to_vec()))
            })
            .collect();

        let all_input = plan.all_input_mask().as_words();
        let start_of_data = plan.start_of_data_mask().as_words();
        let report_mask = plan.report_mask();

        let set_of = |set_words: &[u64]| -> Vec<u32> {
            let mut out = Vec::new();
            for (w, &word) in set_words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    out.push((w * 64 + bits.trailing_zeros() as usize) as u32);
                    bits &= bits - 1;
                }
            }
            out
        };

        let mut states: Vec<Vec<u32>> = vec![Vec::new()];
        let mut interned: std::collections::HashMap<Vec<u32>, u32> =
            std::collections::HashMap::new();
        interned.insert(Vec::new(), 0);
        let mut next: Vec<u32> = Vec::new();
        let mut first: Vec<u32> = vec![0; rows];

        let intern = |members: Vec<u32>,
                      states: &mut Vec<Vec<u32>>,
                      interned: &mut std::collections::HashMap<Vec<u32>, u32>|
         -> Option<u32> {
            if let Some(&id) = interned.get(&members) {
                return Some(id);
            }
            if states.len() >= budget.max_states
                || (states.len() + 1) * rows * size_of::<u32>() > budget.max_table_bytes
            {
                return None;
            }
            let id = states.len() as u32;
            states.push(members.clone());
            interned.insert(members, id);
            Some(id)
        };

        // Cycle-0 transitions: (all_input ∪ start_of_data) ∩ match[row].
        let mut scratch = vec![0u64; words];
        for (row, match_words) in &reachable {
            for w in 0..words {
                scratch[w] = (all_input[w] | start_of_data[w]) & match_words[w];
            }
            first[*row] = intern(set_of(&scratch), &mut states, &mut interned)?;
        }

        // Breadth of construction order: process states as they are
        // interned; every processed state gets its full transition row.
        let mut member_offsets = vec![0u32];
        let mut members_flat = Vec::new();
        let mut report_offsets = vec![0u32];
        let mut report_locals = Vec::new();
        let mut report_codes = Vec::new();
        let mut dynamic_offsets = vec![0u32];
        let mut dynamics_flat = Vec::new();
        let mut resume: std::collections::HashMap<Vec<u32>, u32> = std::collections::HashMap::new();

        let mut s = 0usize;
        while s < states.len() {
            // succ(S): the union of the members' successor lists.
            let mut succ = vec![0u64; words];
            for &m in &states[s] {
                for &t in plan.successors(m as usize) {
                    succ[t as usize / 64] |= 1 << (t % 64);
                }
            }

            // The dense transition row of S, appended at offset
            // `s × rows`; unreachable rows keep next-state 0.
            next.resize((s + 1) * rows, 0);
            for (row, match_words) in &reachable {
                for w in 0..words {
                    scratch[w] = (succ[w] | all_input[w]) & match_words[w];
                }
                next[s * rows + row] = intern(set_of(&scratch), &mut states, &mut interned)?;
            }

            // Per-state precomputed lists.
            for &m in &states[s] {
                members_flat.push(m);
                if report_mask.contains(m as usize) {
                    report_locals.push(m);
                    report_codes.push(plan.report_code_unchecked(m as usize));
                }
            }
            member_offsets.push(members_flat.len() as u32);
            report_offsets.push(report_locals.len() as u32);
            let dyn_set = set_of(&succ);
            resume.entry(dyn_set.clone()).or_insert(s as u32);
            dynamics_flat.extend_from_slice(&dyn_set);
            dynamic_offsets.push(dynamics_flat.len() as u32);
            s += 1;
        }

        // Packed word bitmaps per state, so the engine's write-through
        // is a word-level OR-copy rather than a per-member loop.
        let any_words = words.div_ceil(64).max(1);
        let num_states = member_offsets.len() - 1;
        let mut active_bits = vec![0u64; num_states * words];
        let mut active_any = vec![0u64; num_states * any_words];
        let mut dynamic_bits = vec![0u64; num_states * words];
        let mut dynamic_any = vec![0u64; num_states * any_words];
        let pack = |flat: &[u32], offsets: &[u32], bits: &mut [u64], any: &mut [u64]| {
            for state in 0..num_states {
                let span = offsets[state] as usize..offsets[state + 1] as usize;
                for &local in &flat[span] {
                    let w = local as usize / 64;
                    bits[state * words + w] |= 1u64 << (local % 64);
                    any[state * any_words + w / 64] |= 1u64 << (w % 64);
                }
            }
        };
        pack(
            &members_flat,
            &member_offsets,
            &mut active_bits,
            &mut active_any,
        );
        pack(
            &dynamics_flat,
            &dynamic_offsets,
            &mut dynamic_bits,
            &mut dynamic_any,
        );

        Some(CompiledDfa {
            alphabet: rows,
            next,
            first,
            member_offsets,
            members: members_flat,
            report_offsets,
            report_locals,
            report_codes,
            dynamic_offsets,
            dynamics: dynamics_flat,
            resume,
            words,
            any_words,
            active_bits,
            active_any,
            dynamic_bits,
            dynamic_any,
        })
    }

    /// Number of subset states (state 0 is the empty active set).
    pub fn num_states(&self) -> usize {
        self.member_offsets.len() - 1
    }

    /// Transition-table row width (256 for byte plans, `num_codes + 1`
    /// for encoded plans).
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Bytes held by the dense next-state table (the quantity a global
    /// DFA memory budget meters).
    pub fn table_bytes(&self) -> usize {
        (self.next.len() + self.first.len()) * size_of::<u32>()
    }

    /// One table load: the state after consuming a symbol whose match
    /// row is `row`, from `state`, on any cycle after the first.
    #[inline]
    pub fn next(&self, state: u32, row: u32) -> u32 {
        self.next[state as usize * self.alphabet + row as usize]
    }

    /// The cycle-0 transition for match row `row` (start-of-data states
    /// inject only there). Only meaningful out of state 0.
    #[inline]
    pub fn first(&self, row: u32) -> u32 {
        self.first[row as usize]
    }

    /// The active set of `state`: sorted local state ids.
    #[inline]
    pub fn members(&self, state: u32) -> &[u32] {
        let s = state as usize;
        &self.members[self.member_offsets[s] as usize..self.member_offsets[s + 1] as usize]
    }

    /// The reporting members of `state` with their codes, as parallel
    /// slices `(locals, codes)` in ascending local order.
    #[inline]
    pub fn reports(&self, state: u32) -> (&[u32], &[u32]) {
        let s = state as usize;
        let span = self.report_offsets[s] as usize..self.report_offsets[s + 1] as usize;
        (&self.report_locals[span.clone()], &self.report_codes[span])
    }

    /// `succ(state)`: the sorted dynamic set the next cycle's enable
    /// vector contains — what the engine writes through to its lane.
    #[inline]
    pub fn dynamics(&self, state: u32) -> &[u32] {
        let s = state as usize;
        &self.dynamics[self.dynamic_offsets[s] as usize..self.dynamic_offsets[s + 1] as usize]
    }

    /// The active set of `state` as packed 64-state words plus its
    /// occupancy summary (`bits`, `any`) — OR these into a lane's
    /// active words/summary for an O(words) write-through.
    #[inline]
    pub fn active_words(&self, state: u32) -> (&[u64], &[u64]) {
        let s = state as usize;
        (
            &self.active_bits[s * self.words..(s + 1) * self.words],
            &self.active_any[s * self.any_words..(s + 1) * self.any_words],
        )
    }

    /// `succ(state)` as packed words plus occupancy summary — the
    /// next-cycle enable words a lane's write-through ORs in.
    #[inline]
    pub fn dynamic_words(&self, state: u32) -> (&[u64], &[u64]) {
        let s = state as usize;
        (
            &self.dynamic_bits[s * self.words..(s + 1) * self.words],
            &self.dynamic_any[s * self.any_words..(s + 1) * self.any_words],
        )
    }

    /// The state a suspended flow resumes into, given its sorted dynamic
    /// set — some state whose `succ` set equals it (forward-equivalent:
    /// everything the flow can still do depends only on the dynamic
    /// set). `None` if no constructed state has that `succ` set (e.g.
    /// the snapshot came from a different plan); the caller falls back
    /// to NFA stepping for the lane.
    pub fn resume_state(&self, dynamics: &[u32]) -> Option<u32> {
        self.resume.get(dynamics).copied()
    }
}

/// One end of a cross-shard activation edge: the receiving state,
/// addressed shard-locally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossTarget {
    /// Index of the shard holding the target state.
    pub shard: u32,
    /// The target's local index within that shard.
    pub local: u32,
}

/// One partition of a [`ShardedAutomaton`]: a self-contained local
/// execution plan over a renumbered local state space, plus the shard's
/// share of the cross-shard edge table.
///
/// A shard is the software analogue of one CAM sub-array with its local
/// switch: everything in its local plan resolves without leaving the
/// array, and only [`cross_successors`](Shard::cross_successors) traffic
/// touches the (simulated) global switch. The local plan is a
/// [`CompiledAutomaton`] by default, or a [`CompiledEncodedAutomaton`]
/// for encoding-aware sharded execution — any [`ExecutionPlan`] works.
#[derive(Clone, Debug)]
pub struct Shard<P = CompiledAutomaton> {
    plan: P,
    /// Local index → global state id.
    global_states: Vec<u32>,
    /// CSR over local states: cross-shard successors of local state `i`
    /// are `cross_targets[cross_offsets[i]..cross_offsets[i + 1]]`.
    cross_offsets: Vec<u32>,
    cross_targets: Vec<CrossTarget>,
    /// Byte plans: bit `sym` set iff `plan.start_match(sym)` is
    /// non-empty. Strided plans: bit `a` set iff
    /// `plan.first_start_match(a)` is non-empty. Either way the O(1)
    /// "could injecting starts fire here" probe the engine's idle-shard
    /// skip uses.
    start_match_possible: [u64; 4],
    /// Strided plans: `pair_start_possible[a]` is the exact mask of
    /// second symbols completing a start-injected pair beginning with
    /// `a`. Empty for byte plans.
    pair_start_possible: Vec<[u64; 4]>,
    has_start_of_data: bool,
    /// The determinized fast path, when this component was nominated
    /// and subset construction stayed within budget. `Arc` so cached
    /// retargets share one table. Always `None` for shards with cross
    /// edges (a DFA state is a *whole-component* active set) and for
    /// strided plans.
    dfa: Option<std::sync::Arc<CompiledDfa>>,
}

impl<P: PlanBase> Shard<P> {
    /// The shard's local execution plan (states renumbered `0..len`).
    pub fn plan(&self) -> &P {
        &self.plan
    }

    /// Number of states placed in this shard.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Returns `true` for a shard holding no states.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Local index → global state id, for all local states.
    pub fn global_states(&self) -> &[u32] {
        &self.global_states
    }

    /// Cross-shard successors of the local state `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn cross_successors(&self, local: usize) -> &[CrossTarget] {
        &self.cross_targets
            [self.cross_offsets[local] as usize..self.cross_offsets[local + 1] as usize]
    }

    /// Total cross-shard edges leaving this shard.
    pub fn num_cross_edges(&self) -> usize {
        self.cross_targets.len()
    }

    /// `true` if any statically enabled (`all-input`) state of this shard
    /// matches `symbol` — i.e. injecting starts this cycle could activate
    /// something even with an empty dynamic vector. For strided shards
    /// `symbol` is the *first* symbol of the pair; use
    /// [`pair_start_possible`](Shard::pair_start_possible) for the full
    /// pair probe.
    pub fn start_match_possible(&self, symbol: u8) -> bool {
        self.start_match_possible[symbol as usize / 64] >> (symbol % 64) & 1 == 1
    }

    /// `true` if injecting starts could activate something on the pair
    /// `(a, b)` — exact for strided shards
    /// (`first_start_match(a) & second[b]` occupancy, precomputed), and
    /// the [`start_match_possible`](Shard::start_match_possible) probe
    /// for byte shards (where `b` is meaningless).
    pub fn pair_start_possible(&self, a: u8, b: u8) -> bool {
        match self.pair_start_possible.get(a as usize) {
            Some(mask) => mask[b as usize / 64] >> (b % 64) & 1 == 1,
            None => self.start_match_possible(a),
        }
    }

    /// `true` if the shard holds any `start-of-data` state (which fires
    /// only on cycle 0).
    pub fn has_start_of_data(&self) -> bool {
        self.has_start_of_data
    }

    /// The shard's determinized fast path, if one was compiled — the
    /// engine then steps this shard with one table load per cycle
    /// instead of the NFA word sweeps (hybrid execution; results are
    /// bit-identical either way).
    pub fn dfa(&self) -> Option<&CompiledDfa> {
        self.dfa.as_deref()
    }

    /// Attaches a determinized fast path to a self-contained component
    /// shard.
    ///
    /// # Panics
    ///
    /// Panics if the shard has cross-shard edges: a [`CompiledDfa`]
    /// state is the component's whole active set, which cross traffic
    /// would invalidate.
    pub(crate) fn with_dfa(mut self, dfa: std::sync::Arc<CompiledDfa>) -> Shard<P> {
        assert!(
            self.cross_targets.is_empty(),
            "DFA fast paths require self-contained component shards"
        );
        self.dfa = Some(dfa);
        self
    }

    /// Builds the shard of one self-contained compilation unit (a
    /// connected component): no activation edge leaves a component, so
    /// its cross table is empty by construction. Used by
    /// `crate::compile`'s cached per-component driver.
    pub(crate) fn from_component(
        plan: P,
        probes: ShardProbes,
        global_states: Vec<u32>,
    ) -> Shard<P> {
        debug_assert_eq!(plan.len(), global_states.len());
        let has_start_of_data = !plan.start_of_data_mask().is_empty();
        Shard {
            cross_offsets: vec![0; global_states.len() + 1],
            cross_targets: Vec::new(),
            global_states,
            start_match_possible: probes.start,
            pair_start_possible: probes.pair_start,
            has_start_of_data,
            dfa: None,
            plan,
        }
    }

    /// Clones this shard with a different local → global table — how a
    /// cached component plan is re-targeted at the global ids it holds
    /// in the ruleset currently being compiled. Only valid for
    /// component shards (empty cross table), whose execution cannot
    /// observe global ids.
    pub(crate) fn retarget(&self, global_states: Vec<u32>) -> Shard<P>
    where
        P: Clone,
    {
        debug_assert!(
            self.cross_targets.is_empty(),
            "only component shards are cacheable"
        );
        debug_assert_eq!(self.global_states.len(), global_states.len());
        let mut shard = self.clone();
        shard.global_states = global_states;
        shard
    }
}

/// A compiled plan partitioned across simulated CAM arrays: per-shard
/// [`CompiledAutomaton`]s plus an explicit cross-shard edge table.
///
/// The flat [`CompiledAutomaton`] treats the automaton as one state
/// space, so the engine sweeps one set of match/enable vectors sized to
/// the whole design. The hardware does not: states live in many small
/// CAM sub-arrays, activations resolve inside an array's local switch,
/// and only cross-array activations ride the global switch. A
/// `ShardedAutomaton` mirrors that decomposition so the functional
/// engine can keep per-array state, skip arrays with nothing enabled
/// (the software form of powering idle arrays down), and expose
/// per-shard activity to the energy model directly.
///
/// Shard assignment strategies:
///
/// * [`compile`](ShardedAutomaton::compile) — balance connected
///   components over `num_shards` shards (largest-first greedy, the same
///   decreasing order the mapper packs in);
/// * [`compile_per_component`](ShardedAutomaton::compile_per_component)
///   — one shard per connected component;
/// * [`compile_with_assignment`](ShardedAutomaton::compile_with_assignment)
///   — an explicit per-state shard id, e.g. `Mapping::partition_of`
///   from `cama_arch::mapping::map_design`, so functional shards
///   coincide with the energy model's partitions.
///
/// Execution over any strategy is bit-identical to the flat plan
/// (asserted differentially in `tests/property.rs`).
///
/// # Examples
///
/// ```
/// use cama_core::compiled::ShardedAutomaton;
/// use cama_core::regex;
///
/// // Two independent patterns → two components.
/// let nfa = regex::compile_set(&["abc", "xyz"])?;
/// let sharded = ShardedAutomaton::compile_per_component(&nfa);
/// assert_eq!(sharded.num_shards(), 2);
/// assert_eq!(sharded.len(), nfa.len());
/// // Independent components have no cross-shard edges.
/// assert_eq!(sharded.num_cross_edges(), 0);
/// # Ok::<(), cama_core::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct ShardedAutomaton<P = CompiledAutomaton> {
    len: usize,
    name: String,
    shards: Vec<Shard<P>>,
    /// Global state id → owning shard.
    shard_of: Vec<u32>,
    /// Global state id → local index within its shard.
    local_of: Vec<u32>,
    num_cross_edges: usize,
}

/// A [`ShardedAutomaton`] whose per-shard plans execute on an encoding
/// codebook — the encoding-aware counterpart of the byte sharded plan,
/// built with `cama_encoding::EncodingPlan::compile_sharded`.
pub type ShardedEncodedAutomaton = ShardedAutomaton<CompiledEncodedAutomaton>;

/// A [`ShardedAutomaton`] whose per-shard plans are 2-stride byte
/// plans — per-CAM-array strided execution, built with
/// [`ShardedAutomaton::compile_strided`] and friends.
pub type ShardedStridedAutomaton = ShardedAutomaton<CompiledStridedAutomaton>;

/// A [`ShardedAutomaton`] whose per-shard plans execute on per-half
/// encoding codebooks — encoding-aware sharded 2-stride execution,
/// built with `cama_encoding::StridedEncoding::compile_sharded`.
pub type ShardedEncodedStridedAutomaton = ShardedAutomaton<CompiledEncodedStridedAutomaton>;

impl ShardedAutomaton {
    /// Compiles `nfa` into at most `num_shards` shards by balancing
    /// connected components (largest first, onto the least-loaded shard).
    ///
    /// `num_shards` is clamped to `1..=components` — a component is
    /// never split across shards, so asking for more shards than
    /// components yields one shard per component.
    pub fn compile(nfa: &Nfa, num_shards: usize) -> ShardedAutomaton {
        let ccs = connected_components(nfa);
        let num_shards = num_shards.clamp(1, ccs.len().max(1));
        let mut loads = vec![0usize; num_shards];
        let mut order: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
        for cc in &ccs {
            let lightest = loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, &load)| load)
                .map(|(i, _)| i)
                .unwrap();
            loads[lightest] += cc.len();
            order[lightest].extend(cc.states.iter().map(|s| s.0));
        }
        Self::build(nfa, order, |local, _| CompiledAutomaton::compile(local))
    }

    /// One shard per connected component (the finest sharding that keeps
    /// every activation edge array-local): the shard assignment *is* the
    /// per-state component id.
    pub fn compile_per_component(nfa: &Nfa) -> ShardedAutomaton {
        let (ids, _) = crate::graph::component_ids(nfa);
        Self::compile_with_assignment(nfa, &ids)
    }

    /// Compiles with an explicit per-state shard id (shard count is
    /// `max(assignment) + 1`). Pass `Mapping::partition_of` from the
    /// architecture mapper to make functional shards coincide with the
    /// energy model's partitions. Cross-shard edges may point in any
    /// direction; shard ids may be sparse (unused ids become empty
    /// shards, which the engine skips unconditionally).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != nfa.len()`.
    pub fn compile_with_assignment(nfa: &Nfa, assignment: &[u32]) -> ShardedAutomaton {
        Self::compile_shards_with(nfa, assignment, |local, _| {
            CompiledAutomaton::compile(local)
        })
    }
}

impl ShardedAutomaton<CompiledEncodedAutomaton> {
    /// Per-state slot weights taken from the actual encoded shard plans
    /// (`entries_of`, at least 1 per state), indexed by *global* state
    /// id — what the energy model charges per enabled state.
    pub fn entry_weights(&self) -> Vec<u32> {
        let mut weights = vec![1u32; self.len];
        for shard in &self.shards {
            for (local, &global) in shard.global_states().iter().enumerate() {
                weights[global as usize] = shard.plan().entries_of(local).max(1);
            }
        }
        weights
    }
}

/// The O(1) idle-skip probes of one shard, derived from its local plan
/// at build time (shared with `crate::compile`'s per-unit builder).
pub(crate) struct ShardProbes {
    /// Bit `sym`: injecting starts on (first) symbol `sym` could fire.
    pub(crate) start: [u64; 4],
    /// Strided shards only: `pair[a]` is the exact mask of second
    /// symbols `b` for which `first_start_match(a) & second[b]` is
    /// non-empty — the per-pair start probe (the per-half probes alone
    /// are too conservative once odd-entry states with FULL first
    /// classes exist, which is every unanchored pattern). Empty for
    /// byte shards.
    pub(crate) pair_start: Vec<[u64; 4]>,
}

/// The per-shard plan compiler the shell builder drives:
/// `(shard index, states in local order, local edge list) → plan`.
type ShardCompiler<'a, P> = dyn FnMut(usize, &[u32], &[(u32, u32)]) -> P + 'a;

/// Groups `assignment` into per-shard state lists (shard count is
/// `max(assignment) + 1`, minimum 1).
fn order_of_assignment(assignment: &[u32]) -> Vec<Vec<u32>> {
    let num_shards = assignment
        .iter()
        .max()
        .map_or(0, |&m| m as usize + 1)
        .max(1);
    let mut order: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
    for (state, &shard) in assignment.iter().enumerate() {
        order[shard as usize].push(state as u32);
    }
    order
}

/// Balances components over at most `num_shards` per-shard state lists
/// (largest component first, onto the least-loaded shard), given each
/// state's component id numbered largest-component-first.
fn balance_components(
    component_of: &[u32],
    num_components: usize,
    num_shards: usize,
) -> Vec<Vec<u32>> {
    let num_shards = num_shards.clamp(1, num_components.max(1));
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_components];
    for (state, &c) in component_of.iter().enumerate() {
        members[c as usize].push(state as u32);
    }
    let mut loads = vec![0usize; num_shards];
    let mut order: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
    for cc in members {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &load)| load)
            .map(|(i, _)| i)
            .unwrap();
        loads[lightest] += cc.len();
        order[lightest].extend(cc);
    }
    order
}

/// The idle-skip probes of a byte shard: start-match occupancy per
/// symbol (byte cycles have no second symbol, so there is no pair
/// table).
pub(crate) fn byte_probes<P: ExecutionPlan>(plan: &P) -> ShardProbes {
    let mut start = [0u64; 4];
    for sym in 0..ALPHABET {
        if plan.start_match(sym as u8).first_set().is_some() {
            start[sym / 64] |= 1u64 << (sym % 64);
        }
    }
    ShardProbes {
        start,
        pair_start: Vec::new(),
    }
}

/// The idle-skip probes of a strided shard: first-half start-match
/// occupancy plus the exact per-pair start table, built by folding
/// every statically enabled state's (first class × second class)
/// rectangle.
pub(crate) fn strided_probes<P: StridedPlan>(plan: &P) -> ShardProbes {
    let mut start = [0u64; 4];
    for sym in 0..ALPHABET {
        if plan.first_start_match(sym as u8).first_set().is_some() {
            start[sym / 64] |= 1u64 << (sym % 64);
        }
    }
    let mut pair_start = vec![[0u64; 4]; ALPHABET];
    for s in plan.all_input_mask().iter() {
        let mut second_mask = [0u64; 4];
        for b in 0..ALPHABET {
            if plan.second_vector(b as u8).contains(s) {
                second_mask[b / 64] |= 1u64 << (b % 64);
            }
        }
        for (a, pair) in pair_start.iter_mut().enumerate() {
            if plan.first_vector(a as u8).contains(s) {
                for (k, m) in second_mask.iter().enumerate() {
                    pair[k] |= m;
                }
            }
        }
    }
    ShardProbes { start, pair_start }
}

impl<P: ExecutionPlan> ShardedAutomaton<P> {
    /// Compiles with an explicit per-state shard id and a custom
    /// per-shard plan compiler. `compile_shard` receives each shard's
    /// renumbered local NFA together with its local-index → global-id
    /// table — which is how the encoding toolchain reuses one shared
    /// codebook across every shard
    /// (`cama_encoding::EncodingPlan::compile_sharded`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != nfa.len()`.
    pub fn compile_shards_with(
        nfa: &Nfa,
        assignment: &[u32],
        compile_shard: impl Fn(&Nfa, &[u32]) -> P,
    ) -> ShardedAutomaton<P> {
        assert_eq!(
            assignment.len(),
            nfa.len(),
            "shard assignment must cover every state"
        );
        Self::build(nfa, order_of_assignment(assignment), compile_shard)
    }

    /// Builds a byte-flavoured sharded plan from per-shard state lists:
    /// each shard's states become a renumbered local [`Nfa`] handed to
    /// `compile_shard`, and the shared shell builder splits the edges.
    fn build(
        nfa: &Nfa,
        order: Vec<Vec<u32>>,
        compile_shard: impl Fn(&Nfa, &[u32]) -> P,
    ) -> ShardedAutomaton<P> {
        Self::build_with(
            nfa.len(),
            nfa.name().to_string(),
            order,
            &|state| {
                nfa.successors(crate::nfa::SteId(state as u32))
                    .iter()
                    .map(|s| s.0)
                    .collect()
            },
            &mut |shard, states, local_edges| {
                let mut builder = NfaBuilder::with_name(format!("{}/shard{shard}", nfa.name()));
                for &g in states {
                    let ste = nfa.ste(crate::nfa::SteId(g));
                    let id = builder.add_ste(ste.class);
                    builder.set_start(id, ste.start);
                    if let Some(code) = ste.report {
                        builder.set_report(id, code);
                    }
                }
                for &(from, to) in local_edges {
                    builder.add_edge(crate::nfa::SteId(from), crate::nfa::SteId(to));
                }
                let local_nfa = builder
                    .build_with_options(BuildOptions {
                        reject_empty_classes: false,
                        reject_unreachable: false,
                    })
                    .expect("lenient build cannot fail");
                compile_shard(&local_nfa, states)
            },
            &byte_probes,
        )
    }
}

impl<P: StridedPlan> ShardedAutomaton<P> {
    /// The 2-stride counterpart of
    /// [`compile_shards_with`](ShardedAutomaton::compile_shards_with):
    /// an explicit per-state shard id over a [`StridedNfa`], with a
    /// custom per-shard plan compiler receiving each shard's renumbered
    /// local strided automaton and its local → global table (how
    /// `cama_encoding::StridedEncoding::compile_sharded` shares its two
    /// per-half codebooks across every shard).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != nfa.len()`.
    pub fn compile_strided_shards_with(
        nfa: &StridedNfa,
        assignment: &[u32],
        compile_shard: impl Fn(&StridedNfa, &[u32]) -> P,
    ) -> ShardedAutomaton<P> {
        assert_eq!(
            assignment.len(),
            nfa.len(),
            "shard assignment must cover every state"
        );
        Self::build_strided(nfa, order_of_assignment(assignment), compile_shard)
    }

    /// Builds a strided-flavoured sharded plan from per-shard state
    /// lists, constructing each shard's renumbered local [`StridedNfa`].
    fn build_strided(
        nfa: &StridedNfa,
        order: Vec<Vec<u32>>,
        compile_shard: impl Fn(&StridedNfa, &[u32]) -> P,
    ) -> ShardedAutomaton<P> {
        Self::build_with(
            nfa.len(),
            nfa.name().to_string(),
            order,
            &|state| nfa.successors(state).to_vec(),
            &mut |shard, states, local_edges| {
                let local_states = states
                    .iter()
                    .map(|&g| nfa.state(g as usize).clone())
                    .collect();
                let mut local_succ: Vec<Vec<u32>> = vec![Vec::new(); states.len()];
                for &(from, to) in local_edges {
                    local_succ[from as usize].push(to);
                }
                let local = StridedNfa::from_parts(
                    local_states,
                    local_succ,
                    format!("{}/shard{shard}", nfa.name()),
                );
                compile_shard(&local, states)
            },
            &strided_probes,
        )
    }
}

impl ShardedAutomaton<CompiledStridedAutomaton> {
    /// Compiles a strided automaton into at most `num_shards` shards by
    /// balancing connected components, mirroring
    /// [`compile`](ShardedAutomaton::compile).
    pub fn compile_strided(nfa: &StridedNfa, num_shards: usize) -> ShardedStridedAutomaton {
        let (ids, count) = nfa.component_ids();
        let order = balance_components(&ids, count, num_shards);
        Self::build_strided(nfa, order, |local, _| {
            CompiledStridedAutomaton::compile(local)
        })
    }

    /// One shard per connected component of the strided automaton.
    pub fn compile_strided_per_component(nfa: &StridedNfa) -> ShardedStridedAutomaton {
        let (ids, _) = nfa.component_ids();
        Self::compile_strided_with_assignment(nfa, &ids)
    }

    /// An explicit per-state shard id over the strided state space
    /// (e.g. the strided mapper's `partition_of`, so functional shards
    /// coincide with the energy model's partitions).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != nfa.len()`.
    pub fn compile_strided_with_assignment(
        nfa: &StridedNfa,
        assignment: &[u32],
    ) -> ShardedStridedAutomaton {
        Self::compile_strided_shards_with(nfa, assignment, |local, _| {
            CompiledStridedAutomaton::compile(local)
        })
    }
}

impl ShardedAutomaton<CompiledEncodedStridedAutomaton> {
    /// Per-state slot weights taken from the actual encoded strided
    /// shard plans (paired entry counts, at least 1 per state), indexed
    /// by *global* state id — what the strided energy model charges per
    /// enabled state.
    pub fn entry_weights(&self) -> Vec<u32> {
        let mut weights = vec![1u32; self.len];
        for shard in &self.shards {
            for (local, &global) in shard.global_states().iter().enumerate() {
                weights[global as usize] = shard.plan().entries_of(local).max(1);
            }
        }
        weights
    }
}

impl<P: PlanBase> ShardedAutomaton<P> {
    /// Shared shell builder: places states, splits edges into the
    /// in-shard and cross-shard halves, compiles each shard's local
    /// plan through `compile_shard` (which receives the shard index,
    /// the shard's states in local order, and its local edge list), and
    /// derives the idle-skip probes through `probes`.
    fn build_with(
        len: usize,
        name: String,
        order: Vec<Vec<u32>>,
        successors_of: &dyn Fn(usize) -> Vec<u32>,
        compile_shard: &mut ShardCompiler<'_, P>,
        probes: &dyn Fn(&P) -> ShardProbes,
    ) -> ShardedAutomaton<P> {
        let mut shard_of = vec![u32::MAX; len];
        let mut local_of = vec![u32::MAX; len];
        for (shard, states) in order.iter().enumerate() {
            for (local, &g) in states.iter().enumerate() {
                debug_assert_eq!(shard_of[g as usize], u32::MAX, "state placed twice");
                shard_of[g as usize] = shard as u32;
                local_of[g as usize] = local as u32;
            }
        }
        debug_assert!(shard_of.iter().all(|&s| s != u32::MAX), "state unplaced");

        let mut num_cross_edges = 0;
        let shards: Vec<Shard<P>> = order
            .iter()
            .enumerate()
            .map(|(shard, states)| {
                let mut local_edges: Vec<(u32, u32)> = Vec::new();
                let mut cross_offsets = Vec::with_capacity(states.len() + 1);
                let mut cross_targets = Vec::new();
                cross_offsets.push(0);
                for (local, &g) in states.iter().enumerate() {
                    for succ in successors_of(g as usize) {
                        let t = succ as usize;
                        if shard_of[t] as usize == shard {
                            local_edges.push((local as u32, local_of[t]));
                        } else {
                            cross_targets.push(CrossTarget {
                                shard: shard_of[t],
                                local: local_of[t],
                            });
                        }
                    }
                    cross_offsets.push(cross_targets.len() as u32);
                }
                num_cross_edges += cross_targets.len();
                let plan = compile_shard(shard, states, &local_edges);
                let probes = probes(&plan);
                let has_start_of_data = !plan.start_of_data_mask().is_empty();
                Shard {
                    plan,
                    global_states: states.clone(),
                    cross_offsets,
                    cross_targets,
                    start_match_possible: probes.start,
                    pair_start_possible: probes.pair_start,
                    has_start_of_data,
                    dfa: None,
                }
            })
            .collect();

        ShardedAutomaton {
            len,
            name,
            shards,
            shard_of,
            local_of,
            num_cross_edges,
        }
    }

    /// Assembles a sharded plan from pre-built shards (one per
    /// compilation unit, in shard-id order), recomputing the global
    /// placement tables from each shard's local → global table. The
    /// cached-compilation counterpart of the shell builder.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the shards do not cover `0..len` exactly
    /// once.
    pub(crate) fn assemble(len: usize, name: String, shards: Vec<Shard<P>>) -> ShardedAutomaton<P> {
        let mut shard_of = vec![u32::MAX; len];
        let mut local_of = vec![u32::MAX; len];
        let mut num_cross_edges = 0;
        for (shard, s) in shards.iter().enumerate() {
            num_cross_edges += s.num_cross_edges();
            for (local, &g) in s.global_states().iter().enumerate() {
                debug_assert_eq!(shard_of[g as usize], u32::MAX, "state placed twice");
                shard_of[g as usize] = shard as u32;
                local_of[g as usize] = local as u32;
            }
        }
        debug_assert!(shard_of.iter().all(|&s| s != u32::MAX), "state unplaced");
        ShardedAutomaton {
            len,
            name,
            shards,
            shard_of,
            local_of,
            num_cross_edges,
        }
    }

    /// Number of global states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan has no states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The automaton's name (inherited from the NFA).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shards (including empty ones for sparse assignments).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// All shards, in shard-id order.
    pub fn shards(&self) -> &[Shard<P>] {
        &self.shards
    }

    /// One shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &Shard<P> {
        &self.shards[shard]
    }

    /// The `(shard, local)` placement of a global state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn placement_of(&self, state: usize) -> (u32, u32) {
        (self.shard_of[state], self.local_of[state])
    }

    /// Total activation edges whose endpoints live in different shards
    /// (the traffic the simulated global switch carries).
    pub fn num_cross_edges(&self) -> usize {
        self.num_cross_edges
    }

    /// Shards carrying a determinized fast path (see [`Shard::dfa`]).
    pub fn num_dfa_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.dfa().is_some()).count()
    }

    /// Total activation edges resolved inside shards.
    pub fn num_local_edges(&self) -> usize {
        self.shards.iter().map(|s| s.plan.num_edges()).sum()
    }

    /// A balanced shard→worker pinning for `workers` execution threads:
    /// `result[shard]` is the worker that owns the shard. Shards are
    /// assigned greedily, heaviest first, to the least-loaded worker,
    /// where a shard's weight is the number of 64-state words its
    /// kernels sweep per visited cycle (the unit behind
    /// `ShardStats::words_visited`); empty shards weigh nothing and are
    /// distributed round-robin. The assignment is deterministic: ties
    /// break toward the lower shard id and the lower worker id.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn pin_shards(&self, workers: usize) -> Vec<u32> {
        assert!(workers > 0, "worker count must be positive");
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        let weight = |shard: usize| self.shards[shard].len().div_ceil(64) as u64;
        // Heaviest first, shard id as the deterministic tie-break.
        order.sort_by_key(|&s| (std::cmp::Reverse(weight(s)), s));
        let mut load = vec![0u64; workers];
        let mut pin = vec![0u32; self.shards.len()];
        let mut next_empty = 0usize;
        for shard in order {
            let w = weight(shard);
            if w == 0 {
                pin[shard] = (next_empty % workers) as u32;
                next_empty += 1;
                continue;
            }
            let lightest = (0..workers).min_by_key(|&i| (load[i], i)).unwrap();
            load[lightest] += w;
            pin[shard] = lightest as u32;
        }
        pin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex;
    use crate::symbol::SymbolClass;
    use crate::{NfaBuilder, SteId};

    #[test]
    fn match_table_covers_all_states() {
        let nfa = regex::compile("(a|b)e*cd+").unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        for symbol in 0..=255u8 {
            let expected: Vec<usize> = nfa
                .stes()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.class.contains(symbol))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(
                plan.match_vector(symbol).iter().collect::<Vec<_>>(),
                expected,
                "symbol {symbol}"
            );
        }
    }

    #[test]
    fn csr_matches_nfa_successors() {
        let nfa = regex::compile("x[0-9]+y").unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        assert_eq!(plan.num_edges(), nfa.num_edges());
        for i in 0..nfa.len() {
            let expected: Vec<u32> = nfa
                .successors(SteId(i as u32))
                .iter()
                .map(|s| s.0)
                .collect();
            assert_eq!(plan.successors(i), expected.as_slice());
        }
    }

    #[test]
    fn start_masks_partition_start_kinds() {
        let mut b = NfaBuilder::new();
        let all = b.add_ste(SymbolClass::singleton(b'a'));
        let sod = b.add_ste(SymbolClass::singleton(b'b'));
        let plain = b.add_ste(SymbolClass::singleton(b'c'));
        b.set_start(all, StartKind::AllInput);
        b.set_start(sod, StartKind::StartOfData);
        b.add_edge(all, plain);
        let nfa = b.build().unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        assert_eq!(plan.all_input_mask().iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            plan.start_of_data_mask().iter().collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn packed_report_codes_are_recovered() {
        let mut b = NfaBuilder::new();
        let mut ids = Vec::new();
        for i in 0..200u32 {
            let id = b.add_ste(SymbolClass::singleton(b'a'));
            b.set_start(id, StartKind::AllInput);
            if i % 3 == 0 {
                b.set_report(id, i * 10 + 1);
            }
            ids.push(id);
        }
        let nfa = b.build().unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        for i in 0..200usize {
            let expected = nfa.ste(SteId(i as u32)).report;
            assert_eq!(plan.report_code(i), expected, "state {i}");
            if let Some(code) = expected {
                assert!(plan.report_mask().contains(i));
                assert_eq!(plan.report_code_unchecked(i), code);
            }
        }
    }

    #[test]
    fn enabled_into_combines_sources() {
        let nfa = regex::compile("ab").unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        let mut dynamic = BitSet::new(plan.len());
        dynamic.insert(1);
        let mut out = BitSet::new(plan.len());
        plan.enabled_into(&dynamic, false, false, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![1]);
        plan.enabled_into(&dynamic, true, false, &mut out);
        assert!(out.contains(0), "all-input start joins when injecting");
    }

    #[test]
    fn strided_pair_match_factorizes() {
        let nfa = regex::compile("ab+c").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let plan = CompiledStridedAutomaton::compile(&strided);
        let mut out = BitSet::new(plan.len());
        for &(a, b) in &[(b'a', b'b'), (b'b', b'c'), (b'z', b'z'), (b'a', b'a')] {
            plan.match_pair_into(a, b, &mut out);
            let expected: Vec<usize> = strided
                .states()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.matches(a, b))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(out.iter().collect::<Vec<_>>(), expected, "pair {a},{b}");
        }
    }

    #[test]
    fn match_pair_into_resizes_any_capacity() {
        let nfa = regex::compile("ab+c").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let plan = CompiledStridedAutomaton::compile(&strided);
        // Wrong capacity in both directions: resized, never a panic.
        for wrong in [0usize, 1, plan.len() + 100] {
            let mut out = BitSet::new(wrong);
            plan.match_pair_into(b'a', b'b', &mut out);
            assert_eq!(out.len(), plan.len());
            let mut expected = plan.first_table(b'a').to_bitset();
            expected.intersect_with(&plan.second_table(b'b').to_bitset());
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn match_pair_enabled_into_is_the_three_way_and() {
        let nfa = regex::compile("ab+c").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let plan = CompiledStridedAutomaton::compile(&strided);
        let enabled = BitSet::full(plan.len());
        let mut out = BitSet::new(0);
        plan.match_pair_enabled_into(b'a', b'b', &enabled, &mut out);
        let mut pair = BitSet::new(plan.len());
        plan.match_pair_into(b'a', b'b', &mut pair);
        assert_eq!(out, pair, "full enable vector leaves the pair row");
        let empty = BitSet::new(plan.len());
        plan.match_pair_enabled_into(b'a', b'b', &empty, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn strided_summaries_track_tables() {
        let nfa = regex::compile_set(&["ab+c", "x[0-9]+y"]).unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let plan = CompiledStridedAutomaton::compile(&strided);
        for sym in [b'a', b'b', b'x', b'0', b'z', 0u8, 255u8] {
            for (words, any) in [
                (plan.first_table(sym).words(), plan.first_table_any(sym)),
                (plan.second_table(sym).words(), plan.second_table_any(sym)),
                (
                    StridedPlan::first_start_match(&plan, sym).words(),
                    StridedPlan::first_start_match_any(&plan, sym),
                ),
            ] {
                for (w, &word) in words.iter().enumerate() {
                    assert_eq!(
                        any[w / 64] >> (w % 64) & 1 == 1,
                        word != 0,
                        "symbol {sym}, word {w}"
                    );
                }
            }
            // The start rows are first_table & all_input, exactly.
            let mut expected = plan.first_table(sym).to_bitset();
            expected.intersect_with(plan.all_input_mask());
            assert_eq!(StridedPlan::first_start_match(&plan, sym), expected);
        }
    }

    /// A toy per-half identity codebook over explicit domains: the
    /// smallest exact strided encoding.
    fn identity_encoded_strided(
        nfa: &StridedNfa,
        first_domain: &[u8],
        second_domain: &[u8],
    ) -> CompiledEncodedStridedAutomaton {
        let half = |domain: &'static [u8], second: bool| StridedHalfSpec {
            code_len: domain.len(),
            num_codes: domain.len(),
            encode: Box::new(move |symbol| {
                domain
                    .iter()
                    .position(|&d| d == symbol)
                    .map(|row| row as u16)
            }),
            matches: {
                let states = nfa.states().to_vec();
                Box::new(move |state, row| {
                    row.is_some_and(|row| {
                        let class = if second {
                            &states[state].second
                        } else {
                            &states[state].first
                        };
                        class.contains(domain[row as usize])
                    })
                })
            },
            entries: Box::new(|_| 1),
            negated: Box::new(|_| false),
        };
        // Domains are static in the tests below; leak-free via 'static.
        CompiledEncodedStridedAutomaton::compile_with(
            nfa,
            half(Box::leak(first_domain.to_vec().into_boxed_slice()), false),
            half(Box::leak(second_domain.to_vec().into_boxed_slice()), true),
        )
    }

    #[test]
    fn encoded_strided_rows_match_byte_rows_over_the_domain() {
        let nfa = regex::compile("(a|b)c+d").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let byte = CompiledStridedAutomaton::compile(&strided);
        // Odd-entry states have a FULL first class, so the first domain
        // must cover every byte for exactness; use 0..=255.
        let full: Vec<u8> = (0u8..=255).collect();
        let encoded = identity_encoded_strided(&strided, &full, &full);
        assert_eq!(encoded.len(), byte.len());
        assert_eq!(encoded.num_edges(), byte.num_edges());
        for sym in 0..=255u8 {
            assert_eq!(
                StridedPlan::first_vector(&encoded, sym),
                StridedPlan::first_vector(&byte, sym),
                "first, symbol {sym}"
            );
            assert_eq!(
                StridedPlan::second_vector(&encoded, sym),
                StridedPlan::second_vector(&byte, sym),
                "second, symbol {sym}"
            );
            assert_eq!(
                StridedPlan::first_start_match(&encoded, sym),
                StridedPlan::first_start_match(&byte, sym),
                "start, symbol {sym}"
            );
        }
        for state in 0..byte.len() {
            assert_eq!(encoded.successors(state), byte.successors(state));
            if byte.report_mask().contains(state) {
                assert_eq!(
                    encoded.report_unchecked(state),
                    byte.report_unchecked(state)
                );
            }
        }
    }

    #[test]
    fn encoded_strided_entry_accounting_is_the_capped_pair_product() {
        let nfa = regex::compile("ab").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let n = strided.len();
        let spec = |entries_per_state: u32| StridedHalfSpec {
            code_len: 8,
            num_codes: 256,
            encode: Box::new(|symbol| Some(symbol as u16)),
            matches: Box::new(|_, _| false),
            entries: Box::new(move |_| entries_per_state),
            negated: Box::new(|state| state == 0),
        };
        let encoded = CompiledEncodedStridedAutomaton::compile_with(&strided, spec(10), spec(9));
        assert_eq!(encoded.code_lens(), (8, 8));
        assert_eq!(encoded.num_codes(), (256, 256));
        for state in 0..n {
            assert_eq!(encoded.half_entries_of(state), (10, 9));
            // 10 × 9 = 90, capped at the 64-entry per-state budget.
            assert_eq!(encoded.entries_of(state), 64);
        }
        assert_eq!(encoded.entry_weights(), vec![64; n]);
        assert_eq!(encoded.total_entries(), 64 * n);
        assert_eq!(encoded.negated_states(), (1, 1));
    }

    #[test]
    fn strided_sharding_covers_states_and_edges() {
        let nfa = regex::compile_set(&["abc", "x[0-9]+y", "(ab)+z"]).unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        for shards in [1, 2, 3, usize::MAX] {
            let sharded = ShardedAutomaton::compile_strided(&strided, shards);
            assert_eq!(sharded.len(), strided.len());
            let mut seen = vec![false; strided.len()];
            for (si, shard) in sharded.shards().iter().enumerate() {
                for (local, &g) in shard.global_states().iter().enumerate() {
                    assert!(!seen[g as usize], "state {g} placed twice");
                    seen[g as usize] = true;
                    assert_eq!(sharded.placement_of(g as usize), (si as u32, local as u32));
                }
            }
            assert!(seen.iter().all(|&s| s), "{shards} shards");
            assert_eq!(
                sharded.num_local_edges() + sharded.num_cross_edges(),
                strided.num_edges(),
                "{shards} shards"
            );
        }
        // Per-component strided sharding keeps all edges local.
        let per_cc = ShardedAutomaton::compile_strided_per_component(&strided);
        assert_eq!(per_cc.num_cross_edges(), 0);
        assert!(per_cc.num_shards() >= 3);
    }

    #[test]
    fn strided_shard_probes_are_exact() {
        let nfa = regex::compile_set(&["ab", "cd"]).unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let sharded = ShardedAutomaton::compile_strided_per_component(&strided);
        for shard in sharded.shards() {
            for sym in 0..=255u8 {
                assert_eq!(
                    shard.start_match_possible(sym),
                    !StridedPlan::first_start_match(shard.plan(), sym).is_empty(),
                    "first probe, symbol {sym}"
                );
            }
            // The pair probe is exact: true iff the pair's start row
            // intersects the second-half row.
            for &a in &[b'a', b'b', b'c', b'z', 0u8] {
                for &b in &[b'a', b'b', b'd', b'z', 255u8] {
                    let expected = !StridedPlan::first_start_match(shard.plan(), a)
                        .is_disjoint(StridedPlan::second_vector(shard.plan(), b));
                    assert_eq!(
                        shard.pair_start_possible(a, b),
                        expected,
                        "pair probe ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn strided_reports_pack_code_and_phase() {
        let nfa = regex::compile("ab").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let plan = CompiledStridedAutomaton::compile(&strided);
        for (i, state) in strided.states().iter().enumerate() {
            if let Some((code, phase)) = state.report {
                assert!(plan.report_mask().contains(i));
                assert_eq!(plan.report_unchecked(i), (code, phase));
            } else {
                assert!(!plan.report_mask().contains(i));
            }
        }
    }

    #[test]
    fn empty_automaton_compiles() {
        let nfa = NfaBuilder::new().build().unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        assert!(plan.is_empty());
        assert_eq!(plan.num_edges(), 0);
    }

    #[test]
    fn sharded_covers_every_state_exactly_once() {
        let nfa = regex::compile_set(&["abc", "x[0-9]+y", "(ab)+z"]).unwrap();
        for shards in [1, 2, 3, 7] {
            let sharded = ShardedAutomaton::compile(&nfa, shards);
            assert_eq!(sharded.len(), nfa.len());
            let mut seen = vec![false; nfa.len()];
            for (si, shard) in sharded.shards().iter().enumerate() {
                for (local, &g) in shard.global_states().iter().enumerate() {
                    assert!(!seen[g as usize], "state {g} placed twice");
                    seen[g as usize] = true;
                    assert_eq!(sharded.placement_of(g as usize), (si as u32, local as u32));
                }
            }
            assert!(seen.iter().all(|&s| s), "{shards} shards");
            // Edge conservation: local + cross == total.
            assert_eq!(
                sharded.num_local_edges() + sharded.num_cross_edges(),
                nfa.num_edges(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn per_component_sharding_has_no_cross_edges() {
        let nfa = regex::compile_set(&["abc", "x[0-9]+y", "(ab)+z"]).unwrap();
        let sharded = ShardedAutomaton::compile_per_component(&nfa);
        assert_eq!(sharded.num_cross_edges(), 0);
        assert!(sharded.num_shards() >= 3);
        // Requesting more shards than components clamps.
        let more = ShardedAutomaton::compile(&nfa, 1000);
        assert_eq!(more.num_shards(), sharded.num_shards());
    }

    #[test]
    fn explicit_assignment_splits_components_with_cross_edges() {
        // A 4-state chain split down the middle: 1 cross edge.
        let nfa = regex::compile("abcd").unwrap();
        let assignment = vec![0, 0, 1, 1];
        let sharded = ShardedAutomaton::compile_with_assignment(&nfa, &assignment);
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(sharded.num_cross_edges(), 1);
        let (s0, l1) = sharded.placement_of(1);
        let cross = sharded.shard(s0 as usize).cross_successors(l1 as usize);
        assert_eq!(cross.len(), 1);
        assert_eq!(cross[0].shard, sharded.placement_of(2).0);
        assert_eq!(cross[0].local, sharded.placement_of(2).1);
    }

    #[test]
    fn sparse_assignment_yields_empty_shards() {
        let nfa = regex::compile("ab").unwrap();
        let sharded = ShardedAutomaton::compile_with_assignment(&nfa, &[0, 3]);
        assert_eq!(sharded.num_shards(), 4);
        assert!(sharded.shard(1).is_empty());
        assert!(sharded.shard(2).is_empty());
        assert_eq!(sharded.shard(0).len(), 1);
        assert_eq!(sharded.shard(3).len(), 1);
    }

    #[test]
    fn shard_local_plans_preserve_classes_starts_and_reports() {
        let nfa = regex::compile_set(&["a[bc]+d", "xy"]).unwrap();
        let sharded = ShardedAutomaton::compile(&nfa, 2);
        for shard in sharded.shards() {
            let plan = shard.plan();
            for (local, &g) in shard.global_states().iter().enumerate() {
                let ste = nfa.ste(SteId(g));
                for sym in 0..=255u8 {
                    assert_eq!(
                        plan.match_vector(sym).contains(local),
                        ste.class.contains(sym),
                        "state {g} symbol {sym}"
                    );
                }
                assert_eq!(plan.report_code(local), ste.report, "state {g}");
                assert_eq!(
                    plan.all_input_mask().contains(local),
                    ste.start == StartKind::AllInput
                );
            }
        }
    }

    #[test]
    fn start_match_possible_probe_matches_plan() {
        let nfa = regex::compile_set(&["ab", "cd"]).unwrap();
        let sharded = ShardedAutomaton::compile_per_component(&nfa);
        for shard in sharded.shards() {
            for sym in 0..=255u8 {
                assert_eq!(
                    shard.start_match_possible(sym),
                    !shard.plan().start_match(sym).is_empty(),
                    "symbol {sym}"
                );
            }
        }
    }

    #[test]
    fn empty_automaton_shards() {
        let nfa = NfaBuilder::new().build().unwrap();
        let sharded = ShardedAutomaton::compile(&nfa, 4);
        assert!(sharded.is_empty());
        assert_eq!(sharded.num_shards(), 1);
        assert!(sharded.shard(0).is_empty());
    }

    /// A toy identity codebook over an explicit symbol domain: code row
    /// `i` stands for `domain[i]`, and a state matches a row iff its
    /// class contains that symbol — the smallest exact encoding.
    fn identity_encoded(nfa: &Nfa, domain: &[u8]) -> CompiledEncodedAutomaton {
        let row_of = |symbol: u8| {
            domain
                .iter()
                .position(|&d| d == symbol)
                .map(|row| row as u16)
        };
        CompiledEncodedAutomaton::compile_with(
            nfa,
            domain.len(),
            domain.len(),
            row_of,
            |state, row| {
                row.is_some_and(|row| {
                    nfa.ste(SteId(state as u32))
                        .class
                        .contains(domain[row as usize])
                })
            },
            |_| 1,
            |_| false,
        )
    }

    #[test]
    fn encoded_rows_match_byte_rows_over_the_domain() {
        let nfa = regex::compile("(a|b)e*cd+").unwrap();
        let domain = [b'a', b'b', b'c', b'd', b'e'];
        let byte = CompiledAutomaton::compile(&nfa);
        let encoded = identity_encoded(&nfa, &domain);
        assert_eq!(encoded.len(), byte.len());
        assert_eq!(encoded.num_edges(), byte.num_edges());
        assert_eq!(encoded.num_codes(), domain.len());
        for &symbol in &domain {
            assert_eq!(
                encoded.match_vector(symbol).iter().collect::<Vec<_>>(),
                byte.match_vector(symbol).iter().collect::<Vec<_>>(),
                "symbol {symbol}"
            );
            assert_eq!(
                encoded.start_match(symbol).iter().collect::<Vec<_>>(),
                byte.start_match(symbol).iter().collect::<Vec<_>>(),
                "symbol {symbol}"
            );
            assert!(encoded.encode(symbol).is_some());
        }
        for i in 0..nfa.len() {
            assert_eq!(encoded.report_code(i), byte.report_code(i));
            assert_eq!(encoded.successors(i), byte.successors(i));
        }
    }

    #[test]
    fn encoded_out_of_domain_symbol_selects_the_empty_reserved_row() {
        let nfa = regex::compile("ab").unwrap();
        let encoded = identity_encoded(&nfa, b"ab");
        assert_eq!(encoded.encode(b'z'), None);
        assert_eq!(encoded.row_of(b'z'), encoded.num_codes());
        assert!(encoded.match_vector(b'z').is_empty());
        assert!(encoded.start_match(b'z').is_empty());
        // The reserved row is shared by every out-of-domain symbol.
        assert_eq!(encoded.row_of(b'z'), encoded.row_of(b'q'));
    }

    #[test]
    fn encoded_entry_accounting() {
        let nfa = regex::compile("ab").unwrap();
        let encoded = CompiledEncodedAutomaton::compile_with(
            &nfa,
            16,
            2,
            |s| (s == b'a').then_some(0).or((s == b'b').then_some(1)),
            |state, row| row == Some(state as u16),
            |state| state as u32, // state 0 stores 0 entries, state 1 one
            |state| state == 0,
        );
        assert_eq!(encoded.code_len(), 16);
        assert_eq!(encoded.entries_of(0), 0);
        assert_eq!(encoded.entries_of(1), 1);
        assert_eq!(encoded.entry_weights(), vec![1, 1]);
        assert_eq!(encoded.total_entries(), 1);
        assert!(encoded.is_negated(0));
        assert!(!encoded.is_negated(1));
        assert_eq!(encoded.negated_states(), 1);
    }

    #[test]
    fn sharded_plan_accepts_encoded_shards() {
        let nfa = regex::compile_set(&["ab", "cd"]).unwrap();
        let domain = [b'a', b'b', b'c', b'd'];
        let assignment: Vec<u32> = (0..nfa.len() as u32).map(|i| i % 2).collect();
        let sharded: ShardedEncodedAutomaton =
            ShardedAutomaton::compile_shards_with(&nfa, &assignment, |local, globals| {
                // Reuse the global classes through the handed-in table.
                let row_of = |symbol: u8| {
                    domain
                        .iter()
                        .position(|&d| d == symbol)
                        .map(|row| row as u16)
                };
                CompiledEncodedAutomaton::compile_with(
                    local,
                    domain.len(),
                    domain.len(),
                    row_of,
                    |state, row| {
                        row.is_some_and(|row| {
                            nfa.ste(SteId(globals[state]))
                                .class
                                .contains(domain[row as usize])
                        })
                    },
                    |_| 1,
                    |_| false,
                )
            });
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(sharded.len(), nfa.len());
        assert_eq!(sharded.entry_weights(), vec![1; nfa.len()]);
        // Each local plan's rows reflect the global classes.
        for shard in sharded.shards() {
            for (local, &global) in shard.global_states().iter().enumerate() {
                for &symbol in &domain {
                    assert_eq!(
                        shard.plan().match_vector(symbol).contains(local),
                        nfa.ste(SteId(global)).class.contains(symbol),
                        "state {global} symbol {symbol}"
                    );
                }
            }
        }
    }

    #[test]
    fn pin_shards_covers_all_shards_and_balances_weight() {
        let nfa = regex::compile_set(&["ab+c", "x[0-9]+y", "qr", "st"]).unwrap();
        let plan = ShardedAutomaton::compile_per_component(&nfa);
        for workers in 1..=6 {
            let pin = plan.pin_shards(workers);
            assert_eq!(pin.len(), plan.num_shards(), "{workers} workers");
            assert!(
                pin.iter().all(|&w| (w as usize) < workers),
                "{workers} workers: {pin:?}"
            );
            // Greedy largest-first keeps the heaviest worker within one
            // max-shard weight of the lightest loaded worker.
            let mut load = vec![0u64; workers];
            let mut max_shard = 0u64;
            for (shard, &w) in pin.iter().enumerate() {
                let weight = plan.shard(shard).len().div_ceil(64) as u64;
                load[w as usize] += weight;
                max_shard = max_shard.max(weight);
            }
            let used: Vec<u64> = load.iter().copied().filter(|&l| l > 0).collect();
            let (min, max) = (
                used.iter().copied().min().unwrap_or(0),
                used.iter().copied().max().unwrap_or(0),
            );
            assert!(max - min <= max_shard, "{workers} workers: {load:?}");
        }
        // Deterministic: the same plan pins identically every time.
        assert_eq!(plan.pin_shards(3), plan.pin_shards(3));
    }

    #[test]
    fn pin_shards_distributes_empty_shards() {
        let nfa = regex::compile("abc").unwrap();
        // A sparse assignment leaves shards 1–3 empty.
        let plan = ShardedAutomaton::compile_with_assignment(&nfa, &[0, 0, 4]);
        let pin = plan.pin_shards(2);
        assert_eq!(pin.len(), 5);
        assert!(pin.iter().all(|&w| w < 2));
    }

    /// Walks a [`CompiledDfa`] over `input` collecting `(code, offset)`
    /// reports — the chain == 1 engine loop reduced to its essence.
    fn dfa_reports<P: ExecutionPlan>(
        dfa: &CompiledDfa,
        plan: &P,
        input: &[u8],
    ) -> Vec<(u32, usize)> {
        let mut state = 0u32;
        let mut out = Vec::new();
        for (offset, &byte) in input.iter().enumerate() {
            let row = plan.row_of_symbol(byte);
            state = if offset == 0 {
                dfa.first(row)
            } else {
                dfa.next(state, row)
            };
            let (_, codes) = dfa.reports(state);
            out.extend(codes.iter().map(|&code| (code, offset)));
        }
        out
    }

    #[test]
    fn determinize_declines_when_either_budget_cap_is_exceeded() {
        let nfa = regex::compile("(a|b)e*cd+").unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        let full = CompiledDfa::determinize(&plan, &DfaBudget::default()).expect("fits");
        assert!(full.num_states() > 2);
        assert!(full.table_bytes() <= DfaBudget::default().max_table_bytes);

        let tight_states = DfaBudget {
            max_states: 2,
            ..DfaBudget::default()
        };
        assert!(
            CompiledDfa::determinize(&plan, &tight_states).is_none(),
            "state cap must decline the construction"
        );
        let tight_bytes = DfaBudget {
            max_table_bytes: 64,
            ..DfaBudget::default()
        };
        assert!(
            CompiledDfa::determinize(&plan, &tight_bytes).is_none(),
            "table-byte cap must decline the construction"
        );
        // The empty plan has nothing to determinize.
        let empty_nfa = NfaBuilder::new()
            .build_with_options(crate::BuildOptions {
                reject_empty_classes: false,
                reject_unreachable: false,
            })
            .unwrap();
        let empty = CompiledAutomaton::compile(&empty_nfa);
        assert!(CompiledDfa::determinize(&empty, &DfaBudget::default()).is_none());
    }

    #[test]
    fn determinize_all_input_starts_make_first_equal_next_from_empty() {
        // No start-of-data states: cycle 0 injects exactly what every
        // other cycle injects, so the first column is redundant with
        // stepping out of the empty state.
        let nfa = regex::compile("ab+c").unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        let dfa = CompiledDfa::determinize(&plan, &DfaBudget::default()).unwrap();
        for byte in 0..=255u8 {
            let row = plan.row_of_symbol(byte);
            assert_eq!(dfa.first(row), dfa.next(0, row), "byte {byte}");
        }
    }

    #[test]
    fn determinize_start_of_data_states_inject_only_in_the_first_column() {
        // Anchored `^ab`: the `a` state is start-of-data, enabled at
        // cycle 0 only; re-entering the empty state later must not
        // resurrect it.
        let mut builder = NfaBuilder::new();
        let a = builder.add_ste(SymbolClass::singleton(b'a'));
        let b = builder.add_ste(SymbolClass::singleton(b'b'));
        builder.set_start(a, crate::StartKind::StartOfData);
        builder.add_edge(a, b);
        builder.set_report(b, 7);
        let nfa = builder.build().unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        let dfa = CompiledDfa::determinize(&plan, &DfaBudget::default()).unwrap();

        let row_a = plan.row_of_symbol(b'a');
        assert_eq!(dfa.members(dfa.first(row_a)), &[0], "anchored start fires");
        assert_eq!(dfa.next(0, row_a), 0, "mid-stream `a` enables nothing");
        assert_eq!(dfa_reports(&dfa, &plan, b"ab"), vec![(7, 1)]);
        assert_eq!(dfa_reports(&dfa, &plan, b"xab"), vec![]);
    }

    #[test]
    fn determinize_reports_on_start_state_at_cycle_zero() {
        let nfa = regex::compile_set(&["a", "ab+c"]).unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        let dfa = CompiledDfa::determinize(&plan, &DfaBudget::default()).unwrap();
        // `a` is a reporting start state: its report must surface on the
        // very first byte, and again on every later `a`.
        assert_eq!(
            dfa_reports(&dfa, &plan, b"abca"),
            vec![(0, 0), (1, 2), (0, 3)]
        );
    }

    #[test]
    fn determinize_handles_negated_classes() {
        let nfa = regex::compile("[^a]b").unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        let dfa = CompiledDfa::determinize(&plan, &DfaBudget::default()).unwrap();
        assert_eq!(dfa_reports(&dfa, &plan, b"xb"), vec![(0, 1)]);
        // `a` fails the negated class, so no enable reaches `b`.
        assert_eq!(dfa_reports(&dfa, &plan, b"ab"), vec![]);
        // `b` itself satisfies `[^a]`, so `bb` matches at offset 1.
        assert_eq!(dfa_reports(&dfa, &plan, b"bb"), vec![(0, 1)]);
    }

    #[test]
    fn determinize_encoded_plan_indexes_by_code_row() {
        let nfa = regex::compile("ab").unwrap();
        let encoded = identity_encoded(&nfa, b"ab");
        let dfa = CompiledDfa::determinize(&encoded, &DfaBudget::default()).unwrap();
        // Columns are code rows plus the reserved out-of-domain row —
        // three, not 256.
        assert_eq!(dfa.alphabet(), encoded.num_codes() + 1);
        // next table plus the cycle-0 first column, all u32 entries.
        assert_eq!(
            dfa.table_bytes(),
            (dfa.num_states() + 1) * dfa.alphabet() * 4
        );
        assert_eq!(dfa_reports(&dfa, &encoded, b"ab"), vec![(0, 1)]);
        // Out-of-domain symbols all collapse onto the empty reserved
        // row: no state matches, so the walk stays in state 0.
        assert_eq!(dfa_reports(&dfa, &encoded, b"zb"), vec![]);
        let reserved = encoded.row_of_symbol(b'z');
        assert_eq!(reserved, encoded.num_codes() as u32);
        assert_eq!(dfa.next(0, reserved), 0);
        assert_eq!(dfa.first(reserved), 0);
    }

    #[test]
    fn determinize_resume_state_round_trips_dynamic_sets() {
        let nfa = regex::compile("ab+c").unwrap();
        let plan = CompiledAutomaton::compile(&nfa);
        let dfa = CompiledDfa::determinize(&plan, &DfaBudget::default()).unwrap();
        // Every constructed state's dynamic set must resolve back to a
        // forward-equivalent state.
        for state in 0..dfa.num_states() as u32 {
            let resumed = dfa
                .resume_state(dfa.dynamics(state))
                .expect("constructed dynamic sets are resumable");
            assert_eq!(
                dfa.dynamics(resumed),
                dfa.dynamics(state),
                "state {state} resumed to a different enable set"
            );
        }
        // A set the construction never produced is not resumable: no
        // edge targets the start state `a`, so `{a}` is never a
        // reachable `succ` set and such a snapshot must fall back to
        // NFA stepping.
        assert_eq!(dfa.resume_state(&[0]), None);
    }
}
