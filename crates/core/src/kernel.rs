//! Runtime-dispatched word-slice kernels for the match/AND hot loops.
//!
//! The software analogue of a CAM row operation is a bitwise AND across a
//! whole match row: `active = match_row & enable`, followed by the
//! one-bit-per-word summary update (the selective-precharge analogue) and a
//! popcount for the activity statistics. This module implements those
//! fused operations three times — portable scalar, SSE2, and AVX2 via
//! stable [`std::arch`] intrinsics — and picks an implementation at
//! runtime with [`is_x86_feature_detected!`].
//!
//! Dispatch order (first match wins):
//!
//! 1. a programmatic override installed with [`force`] (used by the
//!    differential tests to pin both paths in one process);
//! 2. the `CAMA_KERNEL` environment variable (`scalar`, `sse2`, `avx2`,
//!    or `auto`), read once per process;
//! 3. the widest instruction set the CPU reports.
//!
//! All kernels operate on `&[u64]` word slices and tolerate any length,
//! including zero and lengths that are not a multiple of the vector
//! width (the remainder is handled scalar). They make no alignment
//! assumption beyond `u64` (loads are unaligned); the compiled row
//! tables pad rows to a multiple of 4 words purely so that consecutive
//! rows do not share cache lines.
//!
//! # Examples
//!
//! ```
//! use cama_core::kernel;
//!
//! // The fused row AND of the per-cycle step: which enabled states
//! // accept this symbol. Dispatches to the widest tier the CPU has.
//! let match_row = [0b1010_u64];
//! let enabled = [0b0110_u64];
//! let mut active = [0_u64];
//! kernel::and2_into(&match_row, &enabled, &mut active);
//! assert_eq!(active, [0b0010]);
//! assert_eq!(kernel::popcount(&active), 1);
//! // Which implementation ran, e.g. "avx2 (detected)".
//! println!("{}", kernel::describe());
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// One kernel implementation tier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Kernel {
    /// Portable scalar loop (the reference semantics).
    Scalar,
    /// 128-bit SSE2 (baseline on `x86_64`).
    Sse2,
    /// 256-bit AVX2 (requires `avx2` + `popcnt`).
    Avx2,
}

impl Kernel {
    /// The kernel's lowercase name (`scalar` / `sse2` / `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Parses a kernel name; `auto` maps to `None` (use detection).
    pub fn parse(name: &str) -> Option<Option<Kernel>> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Some(Kernel::Scalar)),
            "sse2" => Some(Some(Kernel::Sse2)),
            "avx2" => Some(Some(Kernel::Avx2)),
            "auto" | "" => Some(None),
            _ => None,
        }
    }
}

/// The widest kernel the running CPU supports.
pub fn detected() -> Kernel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt") {
            Kernel::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline.
            Kernel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    Kernel::Scalar
}

/// Programmatic override: 0 = none, 1 + Kernel discriminant otherwise.
static FORCED: AtomicU8 = AtomicU8::new(0);

fn env_choice() -> Option<Kernel> {
    static ENV: OnceLock<Option<Kernel>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let var = std::env::var("CAMA_KERNEL").ok()?;
        match Kernel::parse(&var) {
            Some(choice) => choice,
            None => {
                eprintln!("warning: ignoring unknown CAMA_KERNEL value {var:?} (expected scalar, sse2, avx2, or auto)");
                None
            }
        }
    })
}

/// Forces a specific kernel (or `None` to return to env/auto selection).
///
/// A request for a tier wider than the CPU supports is clamped to
/// [`detected`]. This takes effect for subsequent operations in every
/// thread; differential tests that flip it concurrently must serialize.
pub fn force(kernel: Option<Kernel>) {
    let code = match kernel {
        None => 0,
        Some(k) => {
            let k = k.min(detected());
            1 + k as u8
        }
    };
    FORCED.store(code, Ordering::Relaxed);
}

/// The kernel the next operation will dispatch to.
pub fn active() -> Kernel {
    match FORCED.load(Ordering::Relaxed) {
        1 => return Kernel::Scalar,
        2 => return Kernel::Sse2,
        3 => return Kernel::Avx2,
        _ => {}
    }
    match env_choice() {
        Some(k) => k.min(detected()),
        None => detected(),
    }
}

/// A one-line description of the dispatch state, for bench headers.
pub fn describe() -> String {
    let forced = match FORCED.load(Ordering::Relaxed) {
        1 => "scalar",
        2 => "sse2",
        3 => "avx2",
        _ => "none",
    };
    let env = match std::env::var("CAMA_KERNEL") {
        Ok(v) => v,
        Err(_) => "unset".to_string(),
    };
    format!(
        "kernel: active={} detected={} env={} forced={}",
        active().name(),
        detected().name(),
        env,
        forced
    )
}

macro_rules! dispatch {
    ($op:ident ( $($arg:expr),* )) => {{
        #[cfg(target_arch = "x86_64")]
        match active() {
            // SAFETY: `active()` never exceeds `detected()`, so the
            // required CPU features are present.
            Kernel::Avx2 => unsafe { avx2::$op($($arg),*) },
            Kernel::Sse2 => unsafe { sse2::$op($($arg),*) },
            Kernel::Scalar => scalar::$op($($arg),*),
        }
        #[cfg(not(target_arch = "x86_64"))]
        scalar::$op($($arg),*)
    }};
}

/// `out[i] = a[i] & b[i]`.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths differ.
pub fn and2_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    dispatch!(and2(a, b, out))
}

/// `out[i] = a[i] & b[i] & c[i]`.
pub fn and3_into(a: &[u64], b: &[u64], c: &[u64], out: &mut [u64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    debug_assert_eq!(a.len(), out.len());
    dispatch!(and3(a, b, c, out))
}

/// `dst[i] |= src[i]`.
pub fn or_into(src: &[u64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    dispatch!(or2(src, dst))
}

/// Total set-bit count of `words`.
pub fn popcount(words: &[u64]) -> u64 {
    dispatch!(popcnt(words))
}

/// Rebuilds the one-bit-per-word summary: bit `i` of `summary` is set
/// iff `words[i] != 0`. `summary` must hold `words.len().div_ceil(64)`
/// words (it is fully overwritten).
pub fn summarize(words: &[u64], summary: &mut [u64]) {
    debug_assert_eq!(summary.len(), words.len().div_ceil(64));
    dispatch!(summary_of(words, summary))
}

/// Fused row kernel: `out = a & b`, rebuild `summary` over `out`, and
/// return the popcount of `out`.
pub fn and2_summarize(a: &[u64], b: &[u64], out: &mut [u64], summary: &mut [u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(summary.len(), a.len().div_ceil(64));
    dispatch!(and2_sum(a, b, out, summary))
}

/// Fused row kernel: `out = a & b & c`, rebuild `summary` over `out`,
/// and return the popcount of `out`.
pub fn and3_summarize(
    a: &[u64],
    b: &[u64],
    c: &[u64],
    out: &mut [u64],
    summary: &mut [u64],
) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(summary.len(), a.len().div_ceil(64));
    dispatch!(and3_sum(a, b, c, out, summary))
}

/// Fused enable kernel: `out = a & b & (c | d)`, rebuild `summary`
/// over `out`, and return the popcount of `out`.
///
/// This is one non-selective 2-stride pair cycle in a single sweep:
/// both halves' match rows AND the enable vector (`dynamic | static
/// starts`) without ever materializing the OR.
pub fn and2_or2_summarize(
    a: &[u64],
    b: &[u64],
    c: &[u64],
    d: &[u64],
    out: &mut [u64],
    summary: &mut [u64],
) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    debug_assert_eq!(a.len(), d.len());
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(summary.len(), a.len().div_ceil(64));
    dispatch!(and2_or2_sum(a, b, c, d, out, summary))
}

/// Whether `a & b` has any set bit (report-mask scan).
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    dispatch!(overlap(a, b))
}

/// Portable reference implementations.
mod scalar {
    pub fn and2(a: &[u64], b: &[u64], out: &mut [u64]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x & y;
        }
    }

    pub fn and3(a: &[u64], b: &[u64], c: &[u64], out: &mut [u64]) {
        for (((o, &x), &y), &z) in out.iter_mut().zip(a).zip(b).zip(c) {
            *o = x & y & z;
        }
    }

    pub fn or2(src: &[u64], dst: &mut [u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d |= s;
        }
    }

    pub fn popcnt(words: &[u64]) -> u64 {
        words.iter().map(|w| w.count_ones() as u64).sum()
    }

    pub fn summary_of(words: &[u64], summary: &mut [u64]) {
        summary.fill(0);
        for (i, &w) in words.iter().enumerate() {
            if w != 0 {
                summary[i / 64] |= 1u64 << (i % 64);
            }
        }
    }

    pub fn and2_sum(a: &[u64], b: &[u64], out: &mut [u64], summary: &mut [u64]) -> u64 {
        summary.fill(0);
        let mut count = 0u64;
        for (i, ((o, &x), &y)) in out.iter_mut().zip(a).zip(b).enumerate() {
            let v = x & y;
            *o = v;
            if v != 0 {
                summary[i / 64] |= 1u64 << (i % 64);
                count += v.count_ones() as u64;
            }
        }
        count
    }

    pub fn and3_sum(a: &[u64], b: &[u64], c: &[u64], out: &mut [u64], summary: &mut [u64]) -> u64 {
        summary.fill(0);
        let mut count = 0u64;
        for (i, (((o, &x), &y), &z)) in out.iter_mut().zip(a).zip(b).zip(c).enumerate() {
            let v = x & y & z;
            *o = v;
            if v != 0 {
                summary[i / 64] |= 1u64 << (i % 64);
                count += v.count_ones() as u64;
            }
        }
        count
    }

    pub fn and2_or2_sum(
        a: &[u64],
        b: &[u64],
        c: &[u64],
        d: &[u64],
        out: &mut [u64],
        summary: &mut [u64],
    ) -> u64 {
        summary.fill(0);
        let mut count = 0u64;
        for (i, ((((o, &x), &y), &z), &e)) in out.iter_mut().zip(a).zip(b).zip(c).zip(d).enumerate()
        {
            let v = x & y & (z | e);
            *o = v;
            if v != 0 {
                summary[i / 64] |= 1u64 << (i % 64);
                count += v.count_ones() as u64;
            }
        }
        count
    }

    pub fn overlap(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).any(|(&x, &y)| x & y != 0)
    }
}

/// 128-bit SSE2 kernels (always available on `x86_64`).
#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::scalar;
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Requires SSE2 (part of the `x86_64` baseline).
    #[target_feature(enable = "sse2")]
    pub unsafe fn and2(a: &[u64], b: &[u64], out: &mut [u64]) {
        let pairs = a.len() / 2;
        for i in 0..pairs {
            let va = _mm_loadu_si128(a.as_ptr().add(2 * i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(2 * i) as *const __m128i);
            _mm_storeu_si128(
                out.as_mut_ptr().add(2 * i) as *mut __m128i,
                _mm_and_si128(va, vb),
            );
        }
        let done = pairs * 2;
        scalar::and2(&a[done..], &b[done..], &mut out[done..]);
    }

    /// # Safety
    ///
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn and3(a: &[u64], b: &[u64], c: &[u64], out: &mut [u64]) {
        let pairs = a.len() / 2;
        for i in 0..pairs {
            let va = _mm_loadu_si128(a.as_ptr().add(2 * i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(2 * i) as *const __m128i);
            let vc = _mm_loadu_si128(c.as_ptr().add(2 * i) as *const __m128i);
            _mm_storeu_si128(
                out.as_mut_ptr().add(2 * i) as *mut __m128i,
                _mm_and_si128(_mm_and_si128(va, vb), vc),
            );
        }
        let done = pairs * 2;
        scalar::and3(&a[done..], &b[done..], &c[done..], &mut out[done..]);
    }

    /// # Safety
    ///
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn or2(src: &[u64], dst: &mut [u64]) {
        let pairs = src.len() / 2;
        for i in 0..pairs {
            let vs = _mm_loadu_si128(src.as_ptr().add(2 * i) as *const __m128i);
            let vd = _mm_loadu_si128(dst.as_ptr().add(2 * i) as *const __m128i);
            _mm_storeu_si128(
                dst.as_mut_ptr().add(2 * i) as *mut __m128i,
                _mm_or_si128(vs, vd),
            );
        }
        let done = pairs * 2;
        scalar::or2(&src[done..], &mut dst[done..]);
    }

    /// # Safety
    ///
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn popcnt(words: &[u64]) -> u64 {
        scalar::popcnt(words)
    }

    /// # Safety
    ///
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn summary_of(words: &[u64], summary: &mut [u64]) {
        scalar::summary_of(words, summary)
    }

    /// # Safety
    ///
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn and2_sum(a: &[u64], b: &[u64], out: &mut [u64], summary: &mut [u64]) -> u64 {
        and2(a, b, out);
        scalar::summary_of(out, summary);
        scalar::popcnt(out)
    }

    /// # Safety
    ///
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn and3_sum(
        a: &[u64],
        b: &[u64],
        c: &[u64],
        out: &mut [u64],
        summary: &mut [u64],
    ) -> u64 {
        and3(a, b, c, out);
        scalar::summary_of(out, summary);
        scalar::popcnt(out)
    }

    /// # Safety
    ///
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn and2_or2_sum(
        a: &[u64],
        b: &[u64],
        c: &[u64],
        d: &[u64],
        out: &mut [u64],
        summary: &mut [u64],
    ) -> u64 {
        let pairs = a.len() / 2;
        for i in 0..pairs {
            let va = _mm_loadu_si128(a.as_ptr().add(2 * i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(2 * i) as *const __m128i);
            let vc = _mm_loadu_si128(c.as_ptr().add(2 * i) as *const __m128i);
            let vd = _mm_loadu_si128(d.as_ptr().add(2 * i) as *const __m128i);
            _mm_storeu_si128(
                out.as_mut_ptr().add(2 * i) as *mut __m128i,
                _mm_and_si128(_mm_and_si128(va, vb), _mm_or_si128(vc, vd)),
            );
        }
        let done = pairs * 2;
        for i in done..a.len() {
            out[i] = a[i] & b[i] & (c[i] | d[i]);
        }
        scalar::summary_of(out, summary);
        scalar::popcnt(out)
    }

    /// # Safety
    ///
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn overlap(a: &[u64], b: &[u64]) -> bool {
        let pairs = a.len() / 2;
        for i in 0..pairs {
            let va = _mm_loadu_si128(a.as_ptr().add(2 * i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(2 * i) as *const __m128i);
            let v = _mm_and_si128(va, vb);
            // No 128-bit test instruction in SSE2: compare against zero.
            let zero = _mm_cmpeq_epi32(v, _mm_setzero_si128());
            if _mm_movemask_epi8(zero) != 0xffff {
                return true;
            }
        }
        let done = pairs * 2;
        scalar::overlap(&a[done..], &b[done..])
    }
}

/// 256-bit AVX2 kernels with hardware popcount.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::scalar;
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and2(a: &[u64], b: &[u64], out: &mut [u64]) {
        let quads = a.len() / 4;
        for i in 0..quads {
            let va = _mm256_loadu_si256(a.as_ptr().add(4 * i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(4 * i) as *const __m256i);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(4 * i) as *mut __m256i,
                _mm256_and_si256(va, vb),
            );
        }
        let done = quads * 4;
        scalar::and2(&a[done..], &b[done..], &mut out[done..]);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and3(a: &[u64], b: &[u64], c: &[u64], out: &mut [u64]) {
        let quads = a.len() / 4;
        for i in 0..quads {
            let va = _mm256_loadu_si256(a.as_ptr().add(4 * i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(4 * i) as *const __m256i);
            let vc = _mm256_loadu_si256(c.as_ptr().add(4 * i) as *const __m256i);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(4 * i) as *mut __m256i,
                _mm256_and_si256(_mm256_and_si256(va, vb), vc),
            );
        }
        let done = quads * 4;
        scalar::and3(&a[done..], &b[done..], &c[done..], &mut out[done..]);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn or2(src: &[u64], dst: &mut [u64]) {
        let quads = src.len() / 4;
        for i in 0..quads {
            let vs = _mm256_loadu_si256(src.as_ptr().add(4 * i) as *const __m256i);
            let vd = _mm256_loadu_si256(dst.as_ptr().add(4 * i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(4 * i) as *mut __m256i,
                _mm256_or_si256(vs, vd),
            );
        }
        let done = quads * 4;
        scalar::or2(&src[done..], &mut dst[done..]);
    }

    /// # Safety
    ///
    /// Requires `popcnt`.
    #[target_feature(enable = "popcnt")]
    pub unsafe fn popcnt(words: &[u64]) -> u64 {
        // `count_ones` lowers to the POPCNT instruction under this
        // target feature.
        scalar::popcnt(words)
    }

    /// 4-bit non-zero mask of one 256-bit lane group.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn nonzero_mask(v: __m256i) -> u64 {
        let zero = _mm256_cmpeq_epi64(v, _mm256_setzero_si256());
        // Sign bit of each 64-bit lane is 1 where the lane was zero.
        let zmask = _mm256_movemask_pd(_mm256_castsi256_pd(zero)) as u64;
        !zmask & 0xf
    }

    /// Lane-enable mask for a partial final group of `rem` (1..=3)
    /// words: enabled lanes read/store, disabled lanes load as zero.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        const MASKS: [[i64; 4]; 4] = [[0, 0, 0, 0], [-1, 0, 0, 0], [-1, -1, 0, 0], [-1, -1, -1, 0]];
        _mm256_loadu_si256(MASKS[rem].as_ptr() as *const __m256i)
    }

    /// Set-bit count of one 256-bit lane group, read from the register
    /// (avoids a store-to-load round trip through the output slice).
    /// Callers test the group's summary mask first: match rows are
    /// mostly zero, so the skip branch predicts well and the counting
    /// cost is only paid where state is actually active.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and `popcnt`.
    #[inline]
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn lane_popcount(v: __m256i) -> u64 {
        (_mm256_extract_epi64(v, 0) as u64).count_ones() as u64
            + (_mm256_extract_epi64(v, 1) as u64).count_ones() as u64
            + (_mm256_extract_epi64(v, 2) as u64).count_ones() as u64
            + (_mm256_extract_epi64(v, 3) as u64).count_ones() as u64
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn summary_of(words: &[u64], summary: &mut [u64]) {
        summary.fill(0);
        let quads = words.len() / 4;
        for i in 0..quads {
            let v = _mm256_loadu_si256(words.as_ptr().add(4 * i) as *const __m256i);
            let bit = 4 * i;
            summary[bit / 64] |= nonzero_mask(v) << (bit % 64);
        }
        for (i, &w) in words.iter().enumerate().skip(quads * 4) {
            if w != 0 {
                summary[i / 64] |= 1u64 << (i % 64);
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 and `popcnt`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and2_sum(a: &[u64], b: &[u64], out: &mut [u64], summary: &mut [u64]) -> u64 {
        summary.fill(0);
        let mut count = 0u64;
        let quads = a.len() / 4;
        for i in 0..quads {
            let va = _mm256_loadu_si256(a.as_ptr().add(4 * i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(4 * i) as *const __m256i);
            let v = _mm256_and_si256(va, vb);
            _mm256_storeu_si256(out.as_mut_ptr().add(4 * i) as *mut __m256i, v);
            let mask = nonzero_mask(v);
            if mask != 0 {
                let bit = 4 * i;
                summary[bit / 64] |= mask << (bit % 64);
                count += lane_popcount(v);
            }
        }
        let done = quads * 4;
        let rem = a.len() - done;
        if rem != 0 {
            // Partial final group via masked load/store: disabled lanes
            // read as zero and are never written back. `done` is a
            // multiple of 4, so the summary bits stay in one word.
            let m = tail_mask(rem);
            let va = _mm256_maskload_epi64(a.as_ptr().add(done) as *const i64, m);
            let vb = _mm256_maskload_epi64(b.as_ptr().add(done) as *const i64, m);
            let v = _mm256_and_si256(va, vb);
            _mm256_maskstore_epi64(out.as_mut_ptr().add(done) as *mut i64, m, v);
            let mask = nonzero_mask(v);
            if mask != 0 {
                summary[done / 64] |= mask << (done % 64);
                count += lane_popcount(v);
            }
        }
        count
    }

    /// # Safety
    ///
    /// Requires AVX2 and `popcnt`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and3_sum(
        a: &[u64],
        b: &[u64],
        c: &[u64],
        out: &mut [u64],
        summary: &mut [u64],
    ) -> u64 {
        summary.fill(0);
        let mut count = 0u64;
        let quads = a.len() / 4;
        for i in 0..quads {
            let va = _mm256_loadu_si256(a.as_ptr().add(4 * i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(4 * i) as *const __m256i);
            let vc = _mm256_loadu_si256(c.as_ptr().add(4 * i) as *const __m256i);
            let v = _mm256_and_si256(_mm256_and_si256(va, vb), vc);
            _mm256_storeu_si256(out.as_mut_ptr().add(4 * i) as *mut __m256i, v);
            let mask = nonzero_mask(v);
            if mask != 0 {
                let bit = 4 * i;
                summary[bit / 64] |= mask << (bit % 64);
                count += lane_popcount(v);
            }
        }
        let done = quads * 4;
        let rem = a.len() - done;
        if rem != 0 {
            let m = tail_mask(rem);
            let va = _mm256_maskload_epi64(a.as_ptr().add(done) as *const i64, m);
            let vb = _mm256_maskload_epi64(b.as_ptr().add(done) as *const i64, m);
            let vc = _mm256_maskload_epi64(c.as_ptr().add(done) as *const i64, m);
            let v = _mm256_and_si256(_mm256_and_si256(va, vb), vc);
            _mm256_maskstore_epi64(out.as_mut_ptr().add(done) as *mut i64, m, v);
            let mask = nonzero_mask(v);
            if mask != 0 {
                summary[done / 64] |= mask << (done % 64);
                count += lane_popcount(v);
            }
        }
        count
    }

    /// # Safety
    ///
    /// Requires AVX2 and `popcnt`.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn and2_or2_sum(
        a: &[u64],
        b: &[u64],
        c: &[u64],
        d: &[u64],
        out: &mut [u64],
        summary: &mut [u64],
    ) -> u64 {
        summary.fill(0);
        let mut count = 0u64;
        let quads = a.len() / 4;
        // Two groups per iteration with a single combined skip test:
        // match rows are mostly zero, so one well-predicted branch
        // covers 8 words and the summary/count work runs only where
        // something matched.
        let mut i = 0;
        while i + 1 < quads {
            let v0 = _mm256_and_si256(
                _mm256_and_si256(
                    _mm256_loadu_si256(a.as_ptr().add(4 * i) as *const __m256i),
                    _mm256_loadu_si256(b.as_ptr().add(4 * i) as *const __m256i),
                ),
                _mm256_or_si256(
                    _mm256_loadu_si256(c.as_ptr().add(4 * i) as *const __m256i),
                    _mm256_loadu_si256(d.as_ptr().add(4 * i) as *const __m256i),
                ),
            );
            let v1 = _mm256_and_si256(
                _mm256_and_si256(
                    _mm256_loadu_si256(a.as_ptr().add(4 * i + 4) as *const __m256i),
                    _mm256_loadu_si256(b.as_ptr().add(4 * i + 4) as *const __m256i),
                ),
                _mm256_or_si256(
                    _mm256_loadu_si256(c.as_ptr().add(4 * i + 4) as *const __m256i),
                    _mm256_loadu_si256(d.as_ptr().add(4 * i + 4) as *const __m256i),
                ),
            );
            _mm256_storeu_si256(out.as_mut_ptr().add(4 * i) as *mut __m256i, v0);
            _mm256_storeu_si256(out.as_mut_ptr().add(4 * i + 4) as *mut __m256i, v1);
            if _mm256_testz_si256(_mm256_or_si256(v0, v1), _mm256_or_si256(v0, v1)) == 0 {
                let bit = 4 * i;
                let mask = nonzero_mask(v0) | (nonzero_mask(v1) << 4);
                summary[bit / 64] |= mask << (bit % 64);
                count += lane_popcount(v0) + lane_popcount(v1);
            }
            i += 2;
        }
        if i < quads {
            let va = _mm256_loadu_si256(a.as_ptr().add(4 * i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(4 * i) as *const __m256i);
            let vc = _mm256_loadu_si256(c.as_ptr().add(4 * i) as *const __m256i);
            let vd = _mm256_loadu_si256(d.as_ptr().add(4 * i) as *const __m256i);
            let v = _mm256_and_si256(_mm256_and_si256(va, vb), _mm256_or_si256(vc, vd));
            _mm256_storeu_si256(out.as_mut_ptr().add(4 * i) as *mut __m256i, v);
            let mask = nonzero_mask(v);
            if mask != 0 {
                let bit = 4 * i;
                summary[bit / 64] |= mask << (bit % 64);
                count += lane_popcount(v);
            }
        }
        let done = quads * 4;
        let rem = a.len() - done;
        if rem != 0 {
            let m = tail_mask(rem);
            let va = _mm256_maskload_epi64(a.as_ptr().add(done) as *const i64, m);
            let vb = _mm256_maskload_epi64(b.as_ptr().add(done) as *const i64, m);
            let vc = _mm256_maskload_epi64(c.as_ptr().add(done) as *const i64, m);
            let vd = _mm256_maskload_epi64(d.as_ptr().add(done) as *const i64, m);
            let v = _mm256_and_si256(_mm256_and_si256(va, vb), _mm256_or_si256(vc, vd));
            _mm256_maskstore_epi64(out.as_mut_ptr().add(done) as *mut i64, m, v);
            let mask = nonzero_mask(v);
            if mask != 0 {
                summary[done / 64] |= mask << (done % 64);
                count += lane_popcount(v);
            }
        }
        count
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn overlap(a: &[u64], b: &[u64]) -> bool {
        let quads = a.len() / 4;
        for i in 0..quads {
            let va = _mm256_loadu_si256(a.as_ptr().add(4 * i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(4 * i) as *const __m256i);
            if _mm256_testz_si256(va, vb) == 0 {
                return true;
            }
        }
        let done = quads * 4;
        scalar::overlap(&a[done..], &b[done..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that flip the forced kernel.
    pub(crate) fn force_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn pattern(len: usize, salt: u64) -> Vec<u64> {
        (0..len)
            .map(|i| {
                let x = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ salt);
                // Mix in full-zero and full-one words.
                match i % 7 {
                    0 => 0,
                    1 => u64::MAX,
                    _ => x ^ (x >> 31),
                }
            })
            .collect()
    }

    fn check_all(len: usize) {
        let a = pattern(len, 0x1111);
        let b = pattern(len, 0x2222);
        let c = pattern(len, 0x4444);
        let d = pattern(len, 0x8888);
        let summary_len = len.div_ceil(64);

        // Reference results from the scalar implementation.
        let mut want_and2 = vec![0u64; len];
        let mut want_and3 = vec![0u64; len];
        scalar::and2(&a, &b, &mut want_and2);
        scalar::and3(&a, &b, &c, &mut want_and3);
        let mut want_or = a.clone();
        scalar::or2(&b, &mut want_or);
        let mut want_sum2 = vec![0u64; summary_len];
        scalar::summary_of(&want_and2, &mut want_sum2);
        let mut want_sum3 = vec![0u64; summary_len];
        scalar::summary_of(&want_and3, &mut want_sum3);
        let want_andor: Vec<u64> = (0..len).map(|i| a[i] & b[i] & (c[i] | d[i])).collect();
        let mut want_andor_sum = vec![0u64; summary_len];
        scalar::summary_of(&want_andor, &mut want_andor_sum);

        let _guard = force_lock();
        for kernel in [Kernel::Scalar, Kernel::Sse2, Kernel::Avx2] {
            force(Some(kernel));
            let active = active();

            let mut out = vec![!0u64; len];
            and2_into(&a, &b, &mut out);
            assert_eq!(out, want_and2, "{active:?} and2 len={len}");

            let mut out3 = vec![!0u64; len];
            and3_into(&a, &b, &c, &mut out3);
            assert_eq!(out3, want_and3, "{active:?} and3 len={len}");

            let mut acc = a.clone();
            or_into(&b, &mut acc);
            assert_eq!(acc, want_or, "{active:?} or len={len}");

            assert_eq!(
                popcount(&want_and3),
                scalar::popcnt(&want_and3),
                "{active:?} popcount len={len}"
            );

            let mut summary = vec![!0u64; summary_len];
            summarize(&want_and2, &mut summary);
            assert_eq!(summary, want_sum2, "{active:?} summarize len={len}");

            let mut fused = vec![!0u64; len];
            let mut fused_sum = vec![!0u64; summary_len];
            let n = and2_summarize(&a, &b, &mut fused, &mut fused_sum);
            assert_eq!(fused, want_and2, "{active:?} and2_sum out len={len}");
            assert_eq!(
                fused_sum, want_sum2,
                "{active:?} and2_sum summary len={len}"
            );
            assert_eq!(n, scalar::popcnt(&want_and2), "{active:?} and2_sum count");

            let mut fused3 = vec![!0u64; len];
            let mut fused3_sum = vec![!0u64; summary_len];
            let n3 = and3_summarize(&a, &b, &c, &mut fused3, &mut fused3_sum);
            assert_eq!(fused3, want_and3, "{active:?} and3_sum out len={len}");
            assert_eq!(
                fused3_sum, want_sum3,
                "{active:?} and3_sum summary len={len}"
            );
            assert_eq!(n3, scalar::popcnt(&want_and3), "{active:?} and3_sum count");

            let mut fusedor = vec![!0u64; len];
            let mut fusedor_sum = vec![!0u64; summary_len];
            let nor = and2_or2_summarize(&a, &b, &c, &d, &mut fusedor, &mut fusedor_sum);
            assert_eq!(fusedor, want_andor, "{active:?} and2_or2 out len={len}");
            assert_eq!(
                fusedor_sum, want_andor_sum,
                "{active:?} and2_or2 summary len={len}"
            );
            assert_eq!(
                nor,
                scalar::popcnt(&want_andor),
                "{active:?} and2_or2 count"
            );

            assert_eq!(
                intersects(&a, &b),
                scalar::overlap(&a, &b),
                "{active:?} intersects len={len}"
            );
            let zeros = vec![0u64; len];
            assert!(!intersects(&a, &zeros), "{active:?} intersects zeros");
        }
        force(None);
    }

    #[test]
    fn kernels_agree_on_empty_slices() {
        check_all(0);
    }

    #[test]
    fn kernels_agree_on_word_counts_off_the_vector_width() {
        // 1..=9 covers sub-width, exact-width, and remainder cases for
        // both the 2-word SSE2 and 4-word AVX2 strides.
        for len in 1..=9 {
            check_all(len);
        }
        check_all(64);
        check_all(65);
        check_all(127);
        check_all(260);
    }

    #[test]
    fn kernels_handle_all_ones_and_all_zeros() {
        let _guard = force_lock();
        for len in [1usize, 4, 7, 64, 100] {
            let ones = vec![u64::MAX; len];
            let zeros = vec![0u64; len];
            let summary_len = len.div_ceil(64);
            for kernel in [Kernel::Scalar, Kernel::Sse2, Kernel::Avx2] {
                force(Some(kernel));
                let mut out = vec![0u64; len];
                let mut summary = vec![0u64; summary_len];
                let n = and2_summarize(&ones, &ones, &mut out, &mut summary);
                assert_eq!(n, 64 * len as u64);
                assert_eq!(out, ones);
                for (i, &s) in summary.iter().enumerate() {
                    let bits = (len - i * 64).min(64);
                    let want = if bits == 64 {
                        u64::MAX
                    } else {
                        (1u64 << bits) - 1
                    };
                    assert_eq!(s, want, "summary word {i} len={len}");
                }

                let n = and2_summarize(&ones, &zeros, &mut out, &mut summary);
                assert_eq!(n, 0);
                assert_eq!(out, zeros);
                assert!(summary.iter().all(|&s| s == 0));
                assert_eq!(popcount(&zeros), 0);
                assert_eq!(popcount(&ones), 64 * len as u64);
                assert!(!intersects(&ones, &zeros));
                assert!(intersects(&ones, &ones));
            }
        }
        force(None);
    }

    #[test]
    fn forced_kernel_is_clamped_to_detected() {
        let _guard = force_lock();
        force(Some(Kernel::Avx2));
        assert!(active() <= detected());
        force(Some(Kernel::Scalar));
        assert_eq!(active(), Kernel::Scalar);
        force(None);
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in [Kernel::Scalar, Kernel::Sse2, Kernel::Avx2] {
            assert_eq!(Kernel::parse(k.name()), Some(Some(k)));
        }
        assert_eq!(Kernel::parse("auto"), Some(None));
        assert_eq!(Kernel::parse("AVX2"), Some(Some(Kernel::Avx2)));
        assert_eq!(Kernel::parse("neon"), None);
    }
}
