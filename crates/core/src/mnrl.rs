//! Reader and writer for MNRL, the JSON-based automata interchange format
//! from the MNCaRT ecosystem (used alongside ANML by VASim, Impala, eAP,
//! and CAMA's own toolchain).
//!
//! Only homogeneous-state (`hState`) networks are supported, which is the
//! node type every benchmark in ANMLZoo uses.
//!
//! # Examples
//!
//! ```
//! use cama_core::{mnrl, regex};
//!
//! let nfa = regex::compile("ab|cd")?;
//! let text = mnrl::to_string(&nfa);
//! let again = mnrl::from_str(&text)?;
//! assert_eq!(nfa.len(), again.len());
//! # Ok::<(), cama_core::Error>(())
//! ```

use crate::anml::parse_symbol_set;
use crate::error::{Error, Result};
use crate::json::{self, JsonValue};
use crate::nfa::{Nfa, NfaBuilder, StartKind, SteId};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Parses an MNRL document into a homogeneous NFA.
///
/// # Errors
///
/// Returns [`Error::MnrlSyntax`] for malformed JSON and
/// [`Error::InvalidAutomaton`] / [`Error::UnknownState`] for structural
/// problems (non-`hState` nodes, dangling references, bad symbol sets).
pub fn from_str(text: &str) -> Result<Nfa> {
    let doc = json::parse(text)?;
    let name = doc.get("id").and_then(JsonValue::as_str).unwrap_or("mnrl");
    let nodes = doc
        .get("nodes")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| Error::InvalidAutomaton("MNRL document lacks a `nodes` array".into()))?;

    let mut builder = NfaBuilder::with_name(name);
    let mut ids: HashMap<String, SteId> = HashMap::new();

    for node in nodes {
        let node_id = node
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| Error::InvalidAutomaton("MNRL node without id".into()))?;
        let node_type = node
            .get("type")
            .and_then(JsonValue::as_str)
            .unwrap_or("hState");
        if node_type != "hState" {
            return Err(Error::InvalidAutomaton(format!(
                "unsupported MNRL node type `{node_type}`"
            )));
        }
        let symbol_set = node
            .get("attributes")
            .and_then(|a| a.get("symbolSet"))
            .and_then(JsonValue::as_str)
            .ok_or_else(|| {
                Error::InvalidAutomaton(format!("node `{node_id}` lacks attributes.symbolSet"))
            })?;
        let class = parse_symbol_set(symbol_set)?;
        let id = builder.add_ste(class);

        match node.get("enable").and_then(JsonValue::as_str) {
            Some("onActivateIn") | None => {}
            Some("onStartAndActivateIn") => {
                builder.set_start(id, StartKind::StartOfData);
            }
            Some("always") => {
                builder.set_start(id, StartKind::AllInput);
            }
            Some(other) => {
                return Err(Error::InvalidAutomaton(format!(
                    "node `{node_id}` has unsupported enable `{other}`"
                )))
            }
        }

        if node.get("report").and_then(JsonValue::as_bool) == Some(true) {
            let code = node
                .get("attributes")
                .and_then(|a| a.get("reportId"))
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0) as u32;
            builder.set_report(id, code);
        }

        if ids.insert(node_id.to_string(), id).is_some() {
            return Err(Error::InvalidAutomaton(format!(
                "duplicate MNRL node id `{node_id}`"
            )));
        }
    }

    for node in nodes {
        let node_id = node.get("id").and_then(JsonValue::as_str).expect("checked");
        let from = ids[node_id];
        let Some(connections) = node.get("outputConnections").and_then(JsonValue::as_array) else {
            continue;
        };
        for port in connections {
            let Some(activate) = port.get("activate").and_then(JsonValue::as_array) else {
                continue;
            };
            for target in activate {
                let target_id = target
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| Error::InvalidAutomaton("activate entry without id".into()))?;
                let to = *ids
                    .get(target_id)
                    .ok_or_else(|| Error::UnknownState(target_id.to_string()))?;
                builder.add_edge(from, to);
            }
        }
    }

    builder.build()
}

/// Serializes an NFA as an MNRL document.
pub fn to_string(nfa: &Nfa) -> String {
    let nodes: Vec<JsonValue> = (0..nfa.len())
        .map(|i| {
            let id = SteId(i as u32);
            let ste = nfa.ste(id);
            let mut node = BTreeMap::new();
            node.insert(
                "id".to_string(),
                JsonValue::from(format!("ste{i}").as_str()),
            );
            node.insert("type".to_string(), JsonValue::from("hState"));
            node.insert(
                "enable".to_string(),
                JsonValue::from(match ste.start {
                    StartKind::None => "onActivateIn",
                    StartKind::StartOfData => "onStartAndActivateIn",
                    StartKind::AllInput => "always",
                }),
            );
            node.insert("report".to_string(), JsonValue::from(ste.is_reporting()));

            let mut attrs = BTreeMap::new();
            attrs.insert(
                "symbolSet".to_string(),
                JsonValue::from(ste.class.to_string().as_str()),
            );
            if let Some(code) = ste.report {
                attrs.insert("reportId".to_string(), JsonValue::from(code as f64));
            }
            node.insert("attributes".to_string(), JsonValue::Object(attrs));

            let activate: Vec<JsonValue> = nfa
                .successors(id)
                .iter()
                .map(|to| {
                    let mut entry = BTreeMap::new();
                    entry.insert(
                        "id".to_string(),
                        JsonValue::from(format!("ste{}", to.0).as_str()),
                    );
                    entry.insert("portId".to_string(), JsonValue::from("i"));
                    JsonValue::Object(entry)
                })
                .collect();
            let mut port = BTreeMap::new();
            port.insert("id".to_string(), JsonValue::from("o"));
            port.insert("activate".to_string(), JsonValue::Array(activate));
            node.insert(
                "outputConnections".to_string(),
                JsonValue::Array(vec![JsonValue::Object(port)]),
            );
            JsonValue::Object(node)
        })
        .collect();

    let mut doc = BTreeMap::new();
    doc.insert(
        "id".to_string(),
        JsonValue::from(if nfa.name().is_empty() {
            "mnrl"
        } else {
            nfa.name()
        }),
    );
    doc.insert("nodes".to_string(), JsonValue::Array(nodes));
    JsonValue::Object(doc).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolClass;

    fn sample() -> Nfa {
        let mut b = NfaBuilder::with_name("m");
        let s0 = b.add_ste(SymbolClass::from_range(b'0', b'9'));
        let s1 = b.add_ste(SymbolClass::singleton(b'!'));
        b.set_start(s0, StartKind::AllInput);
        b.set_report(s1, 11);
        b.add_edge(s0, s1);
        b.add_edge(s0, s0);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip() {
        let nfa = sample();
        let text = to_string(&nfa);
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed.len(), nfa.len());
        assert_eq!(parsed.num_edges(), nfa.num_edges());
        for i in 0..nfa.len() {
            let id = SteId(i as u32);
            assert_eq!(parsed.ste(id), nfa.ste(id));
            assert_eq!(parsed.successors(id), nfa.successors(id));
        }
        assert_eq!(parsed.name(), "m");
    }

    #[test]
    fn rejects_non_hstate() {
        let doc = r#"{"id":"x","nodes":[{"id":"a","type":"upCounter",
            "attributes":{"symbolSet":"[a]"}}]}"#;
        assert!(from_str(doc).is_err());
    }

    #[test]
    fn rejects_dangling_edges() {
        let doc = r#"{"id":"x","nodes":[{"id":"a","type":"hState","enable":"always",
            "attributes":{"symbolSet":"[a]"},
            "outputConnections":[{"id":"o","activate":[{"id":"nope"}]}]}]}"#;
        assert!(matches!(from_str(doc), Err(Error::UnknownState(_))));
    }

    #[test]
    fn missing_nodes_is_an_error() {
        assert!(from_str(r#"{"id":"x"}"#).is_err());
    }

    #[test]
    fn default_enable_is_on_activate_in() {
        let doc = r#"{"id":"x","nodes":[
            {"id":"a","type":"hState","enable":"always","attributes":{"symbolSet":"[a]"}},
            {"id":"b","type":"hState","attributes":{"symbolSet":"[b]"}}]}"#;
        let nfa = from_str(doc).unwrap();
        assert_eq!(nfa.ste(SteId(1)).start, StartKind::None);
    }
}
