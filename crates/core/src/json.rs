//! A minimal JSON reader/writer, sufficient for the MNRL dialect.
//!
//! MNRL (the MNCaRT network representation language) stores automata as
//! plain JSON objects. This module implements just enough of RFC 8259 to
//! read and write those documents without extra dependencies.

use crate::error::{Error, Result};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys are sorted for deterministic output.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Borrows the value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Borrows the value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key on an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Serializes to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`Error::MnrlSyntax`] with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<JsonValue> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.input.len() {
        return Err(parser.error("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error::MnrlSyntax {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b't') => self.keyword(b"true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword(b"false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword(b"null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &[u8], value: JsonValue) -> Result<JsonValue> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid keyword"))
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii")
            .parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("invalid number"))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("\\u escape out of range"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 code point.
                    let rest = &self.input[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), JsonValue::Number(-25.0));
        assert_eq!(
            parse(r#""a\nb""#).unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn arrays_and_objects() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": false}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(parse(r#""Aé""#).unwrap(), JsonValue::String("Aé".into()));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn roundtrip() {
        let text = r#"{"id":"q0","report":true,"vals":[1,2.5,null,"x\"y"]}"#;
        let v = parse(text).unwrap();
        let re = parse(&v.to_json()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn number_formatting_integers() {
        assert_eq!(JsonValue::Number(3.0).to_json(), "3");
        assert_eq!(JsonValue::Number(3.5).to_json(), "3.5");
    }
}
