//! A compact dynamic bit set used throughout the simulator and hardware
//! models for active-state vectors, match vectors, and crossbar rows.
//!
//! The set is sized at construction time and never grows; every operation
//! that combines two sets requires them to have the same length. This
//! mirrors the fixed-width registers of the modeled hardware (match
//! vectors, next vectors, crossbar rows) and catches size mismatches early.

use crate::kernel;
use std::fmt;

const BITS: usize = 64;

/// A fixed-capacity set of bits backed by `u64` words.
///
/// # Examples
///
/// ```
/// use cama_core::bitset::BitSet;
///
/// let mut set = BitSet::new(128);
/// set.insert(3);
/// set.insert(77);
/// assert!(set.contains(77));
/// assert_eq!(set.count(), 2);
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 77]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with capacity for `len` bits (indices `0..len`).
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; len.div_ceil(BITS)],
        }
    }

    /// Creates a set of `len` bits with every bit set.
    pub fn full(len: usize) -> Self {
        let mut set = BitSet::new(len);
        for (i, word) in set.words.iter_mut().enumerate() {
            let lo = i * BITS;
            let n = (len - lo).min(BITS);
            *word = if n == BITS { !0 } else { (1u64 << n) - 1 };
        }
        set
    }

    /// Creates a set from an iterator of bit indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut set = BitSet::new(len);
        for i in indices {
            set.insert(i);
        }
        set
    }

    /// Number of addressable bits (the capacity, not the population count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.first_set().is_none()
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / BITS] |= 1u64 << (i % BITS);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / BITS] &= !(1u64 << (i % BITS));
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / BITS] >> (i % BITS) & 1 == 1
    }

    /// Clears every bit, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        kernel::or_into(&other.words, &mut self.words);
    }

    /// In-place intersection: `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self &= !other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `true` if `self` and `other` share any set bit.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        kernel::intersects(&self.words, &other.words)
    }

    /// Returns `true` if `self` and `other` share no set bit.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        !self.intersects(other)
    }

    /// The index of the lowest set bit, or `None` if the set is empty.
    pub fn first_set(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| i * BITS + self.words[i].trailing_zeros() as usize)
    }

    /// Returns `true` if every bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Word-level intersection into a destination: `out = self & other`,
    /// 64 bits per operation. `out`'s previous contents are overwritten.
    ///
    /// This is the building-block form of the compiled engine's
    /// matching step (`active = match_vector & enabled`); the engine
    /// itself fuses the same computation with its popcounts and scans
    /// in `cama-sim`, while plan consumers that want the intersection
    /// materialized use this combinator.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn and_into(&self, other: &BitSet, out: &mut BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        assert_eq!(self.len, out.len, "bitset length mismatch");
        kernel::and2_into(&self.words, &other.words, &mut out.words);
    }

    /// Word-level three-way intersection into a destination:
    /// `out = self & b & c`, 64 bits per operation. `out`'s previous
    /// contents are overwritten.
    ///
    /// This is the materialized building-block form of the strided
    /// engine's fused pair step (`active = first[a] & second[b] &
    /// enabled`); the engine itself fuses the same AND with its
    /// popcounts and scans per dirty word, while plan consumers that
    /// want the three-way intersection materialized use this
    /// combinator.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn and3_into(&self, b: &BitSet, c: &BitSet, out: &mut BitSet) {
        assert_eq!(self.len, b.len, "bitset length mismatch");
        assert_eq!(self.len, c.len, "bitset length mismatch");
        assert_eq!(self.len, out.len, "bitset length mismatch");
        kernel::and3_into(&self.words, &b.words, &c.words, &mut out.words);
    }

    /// Word-level union into a destination: `out = self | other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn or_into(&self, other: &BitSet, out: &mut BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        assert_eq!(self.len, out.len, "bitset length mismatch");
        out.words.copy_from_slice(&self.words);
        kernel::or_into(&other.words, &mut out.words);
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// A borrowed [`Row`] view of this set's words.
    pub fn as_row(&self) -> Row<'_> {
        Row {
            len: self.len,
            words: &self.words,
        }
    }

    /// Copies the contents of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Access to the raw words, mostly for hashing or fast comparisons.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the raw words, for fused word-level kernels
    /// (the compiled engine computes `active = match & enabled`, its
    /// popcounts, and the report scan in one pass over these words).
    ///
    /// Callers must keep bits at positions `>= len()` zero; every other
    /// operation relies on that invariant.
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Iterates over the indices of `self & mask` without materializing
    /// the intersection — e.g. picking the reporting states out of an
    /// active vector by masking with a report mask.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn iter_and<'a>(&'a self, mask: &'a BitSet) -> IterAnd<'a> {
        assert_eq!(self.len, mask.len, "bitset length mismatch");
        IterAnd {
            a: &self.words,
            b: &mask.words,
            word_idx: 0,
            current: match (self.words.first(), mask.words.first()) {
                (Some(&x), Some(&y)) => x & y,
                _ => 0,
            },
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to exactly fit the largest index.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let len = indices.iter().max().map_or(0, |&m| m + 1);
        BitSet::from_indices(len, indices)
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over set bit indices, created by [`BitSet::iter`] and
/// [`Row::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * BITS + bit)
    }
}

/// A borrowed, fixed-width row of bits — the view type returned by the
/// compiled plans' per-symbol match-table accessors.
///
/// Rows live contiguously inside a flat cache-blocked
/// [`RowTable`](crate::compiled) `Vec<u64>`, so unlike [`BitSet`] a row
/// does not own its words; it is a `Copy` view that exposes the same
/// read-side API (`contains`, `iter`, `count`, …) plus [`Row::words`]
/// for the SIMD kernels in [`crate::kernel`]. Bits at positions
/// `>= len()` are always zero.
///
/// # Examples
///
/// ```
/// use cama_core::bitset::BitSet;
///
/// let set = BitSet::from_indices(100, [3, 77]);
/// let row = set.as_row();
/// assert!(row.contains(77));
/// assert_eq!(row.iter().collect::<Vec<_>>(), vec![3, 77]);
/// assert_eq!(row.count(), 2);
/// ```
#[derive(Clone, Copy)]
pub struct Row<'a> {
    len: usize,
    words: &'a [u64],
}

impl<'a> Row<'a> {
    /// Wraps a word slice as a row of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not hold exactly `len.div_ceil(64)`
    /// words.
    pub fn from_words(len: usize, words: &'a [u64]) -> Self {
        assert_eq!(words.len(), len.div_ceil(BITS), "row word count mismatch");
        Row { len, words }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        kernel::popcount(self.words) as usize
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / BITS] >> (i % BITS) & 1 == 1
    }

    /// The index of the lowest set bit, or `None` if the row is empty.
    pub fn first_set(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| i * BITS + self.words[i].trailing_zeros() as usize)
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter(&self) -> Iter<'a> {
        Iter {
            words: self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The backing words — the contiguous slice the SIMD kernels stream.
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Returns `true` if the rows share any set bit.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different capacities.
    pub fn intersects(&self, other: Row<'_>) -> bool {
        assert_eq!(self.len, other.len, "row length mismatch");
        kernel::intersects(self.words, other.words)
    }

    /// Returns `true` if the rows share no set bit.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different capacities.
    pub fn is_disjoint(&self, other: Row<'_>) -> bool {
        !self.intersects(other)
    }

    /// Materializes the row as an owned [`BitSet`].
    pub fn to_bitset(&self) -> BitSet {
        BitSet {
            len: self.len,
            words: self.words.to_vec(),
        }
    }
}

impl PartialEq for Row<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl Eq for Row<'_> {}

impl PartialEq<BitSet> for Row<'_> {
    fn eq(&self, other: &BitSet) -> bool {
        self.len == other.len && self.words == other.words.as_slice()
    }
}

impl PartialEq<Row<'_>> for BitSet {
    fn eq(&self, other: &Row<'_>) -> bool {
        other == self
    }
}

impl fmt::Debug for Row<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the set bits of an intersection, created by
/// [`BitSet::iter_and`].
#[derive(Debug)]
pub struct IterAnd<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterAnd<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.a.len() {
                return None;
            }
            self.current = self.a[self.word_idx] & self.b[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let set = BitSet::new(100);
        assert!(set.is_empty());
        assert_eq!(set.count(), 0);
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn insert_remove_contains() {
        let mut set = BitSet::new(130);
        set.insert(0);
        set.insert(64);
        set.insert(129);
        assert!(set.contains(0));
        assert!(set.contains(64));
        assert!(set.contains(129));
        assert!(!set.contains(1));
        set.remove(64);
        assert!(!set.contains(64));
        assert_eq!(set.count(), 2);
    }

    #[test]
    fn full_has_all_bits() {
        let set = BitSet::full(70);
        assert_eq!(set.count(), 70);
        assert!(set.contains(69));
    }

    #[test]
    fn full_zero_len() {
        let set = BitSet::full(0);
        assert_eq!(set.count(), 0);
        assert!(set.is_empty());
    }

    #[test]
    fn union_intersect_difference() {
        let a0 = BitSet::from_indices(10, [1, 3, 5]);
        let b = BitSet::from_indices(10, [3, 4]);

        let mut a = a0.clone();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);

        let mut a = a0.clone();
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3]);

        let mut a = a0.clone();
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn subset_and_intersects() {
        let a = BitSet::from_indices(20, [2, 4]);
        let b = BitSet::from_indices(20, [2, 4, 8]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        let c = BitSet::from_indices(20, [9]);
        assert!(!a.intersects(&c));
        assert!(BitSet::new(20).is_subset(&a));
    }

    #[test]
    fn disjoint_is_the_negation_of_intersects() {
        let a = BitSet::from_indices(200, [2, 70, 199]);
        let b = BitSet::from_indices(200, [3, 71, 198]);
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
        let c = BitSet::from_indices(200, [70]);
        assert!(!a.is_disjoint(&c));
        assert!(BitSet::new(200).is_disjoint(&a));
        assert!(BitSet::new(0).is_disjoint(&BitSet::new(0)));
    }

    #[test]
    fn first_set_finds_lowest_bit() {
        assert_eq!(BitSet::new(100).first_set(), None);
        assert_eq!(BitSet::new(0).first_set(), None);
        let set = BitSet::from_indices(200, [130, 67, 199]);
        assert_eq!(set.first_set(), Some(67));
        assert_eq!(BitSet::from_indices(65, [0]).first_set(), Some(0));
        assert_eq!(BitSet::from_indices(65, [64]).first_set(), Some(64));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let indices = vec![0, 63, 64, 127, 128];
        let set = BitSet::from_indices(200, indices.iter().copied());
        assert_eq!(set.iter().collect::<Vec<_>>(), indices);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let set: BitSet = [5usize, 9, 2].into_iter().collect();
        assert_eq!(set.len(), 10);
        assert_eq!(set.count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut set = BitSet::new(8);
        set.insert(8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_length_mismatch_panics() {
        let mut a = BitSet::new(8);
        let b = BitSet::new(16);
        a.union_with(&b);
    }

    #[test]
    fn and_or_into_destinations() {
        let a = BitSet::from_indices(130, [0, 63, 64, 100, 129]);
        let b = BitSet::from_indices(130, [63, 64, 99, 129]);
        let mut out = BitSet::full(130);
        a.and_into(&b, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![63, 64, 129]);
        a.or_into(&b, &mut out);
        assert_eq!(
            out.iter().collect::<Vec<_>>(),
            vec![0, 63, 64, 99, 100, 129]
        );
    }

    #[test]
    fn and3_into_matches_chained_intersections() {
        let a = BitSet::from_indices(200, [0, 63, 64, 100, 128, 199]);
        let b = BitSet::from_indices(200, [0, 63, 64, 99, 128, 199]);
        let c = BitSet::from_indices(200, [0, 64, 100, 128, 199]);
        let mut out = BitSet::full(200);
        a.and3_into(&b, &c, &mut out);
        let mut chained = a.clone();
        chained.intersect_with(&b);
        chained.intersect_with(&c);
        assert_eq!(out, chained);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 64, 128, 199]);
        // Disjoint third operand empties the result.
        let empty = BitSet::new(200);
        a.and3_into(&b, &empty, &mut out);
        assert!(out.is_empty());
        // Zero-capacity sets are a no-op.
        let zero = BitSet::new(0);
        let mut zout = BitSet::new(0);
        zero.and3_into(&zero, &zero, &mut zout);
        assert!(zout.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and3_into_length_mismatch_panics() {
        let a = BitSet::new(8);
        let b = BitSet::new(8);
        let c = BitSet::new(16);
        let mut out = BitSet::new(8);
        a.and3_into(&b, &c, &mut out);
    }

    #[test]
    fn iter_and_matches_materialized_intersection() {
        let a = BitSet::from_indices(200, [1, 64, 65, 127, 128, 199]);
        let b = BitSet::from_indices(200, [1, 65, 128, 130, 199]);
        let mut materialized = a.clone();
        materialized.intersect_with(&b);
        assert_eq!(
            a.iter_and(&b).collect::<Vec<_>>(),
            materialized.iter().collect::<Vec<_>>()
        );
        let empty = BitSet::new(200);
        assert_eq!(a.iter_and(&empty).count(), 0);
        let zero = BitSet::new(0);
        assert_eq!(zero.iter_and(&zero).count(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_into_length_mismatch_panics() {
        let a = BitSet::new(8);
        let b = BitSet::new(8);
        let mut out = BitSet::new(16);
        a.and_into(&b, &mut out);
    }

    #[test]
    fn row_view_mirrors_the_bitset() {
        let set = BitSet::from_indices(130, [0, 63, 64, 129]);
        let row = set.as_row();
        assert_eq!(row.len(), 130);
        assert!(row.contains(64));
        assert!(!row.contains(1));
        assert_eq!(row.count(), 4);
        assert_eq!(row.first_set(), Some(0));
        assert_eq!(row.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert_eq!(row.to_bitset(), set);
        assert_eq!(row, set);
        assert_eq!(set, row);
        assert_eq!(row.words(), set.as_words());
        assert!(!row.is_empty());
        assert!(BitSet::new(130).as_row().is_empty());
        assert_eq!(BitSet::new(130).as_row().first_set(), None);
    }

    #[test]
    fn row_intersection_and_from_words() {
        let a = BitSet::from_indices(100, [5, 70]);
        let b = BitSet::from_indices(100, [70, 99]);
        let c = BitSet::from_indices(100, [6]);
        assert!(a.as_row().intersects(b.as_row()));
        assert!(a.as_row().is_disjoint(c.as_row()));
        let row = Row::from_words(100, a.as_words());
        assert_eq!(row, a);
        let zero = Row::from_words(0, &[]);
        assert!(zero.is_empty());
        assert_eq!(zero.count(), 0);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn row_from_wrong_word_count_panics() {
        let words = [0u64; 3];
        let _ = Row::from_words(100, &words);
    }

    #[test]
    fn clear_and_copy_from() {
        let mut a = BitSet::from_indices(12, [1, 2, 3]);
        let b = BitSet::from_indices(12, [7]);
        a.copy_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![7]);
        a.clear();
        assert!(a.is_empty());
    }
}
