//! Core automata substrate for the CAMA reproduction (HPCA 2022).
//!
//! This crate provides everything upstream of the hardware models:
//!
//! * [`SymbolClass`] — 256-bit symbol sets with negation support;
//! * [`Nfa`]/[`NfaBuilder`] — the homogeneous (ANML-style) NFA of STEs;
//! * [`compiled`] — dense CAM-friendly execution plans (full symbol →
//!   match-vector tables, CSR adjacency, packed report metadata) that
//!   the simulator engines run on;
//! * [`regex`] — a regex parser and Glushkov compiler to homogeneous NFAs;
//! * [`anml`] and [`mnrl`] — readers/writers for the interchange formats
//!   used by ANMLZoo and the automata-processing toolchains;
//! * [`kernel`] — runtime-dispatched SIMD word-slice kernels
//!   (AVX2/SSE2/scalar) that the match/AND hot loops execute on;
//! * [`compile`] — ruleset-scale compilation: per-component units,
//!   structure-hashed plan caching, parallel compile drivers, and the
//!   [`PlanRemap`] that live hot swap translates state ids through;
//! * [`graph`] — connected components and BFS orderings for mapping;
//! * [`stats`] — the per-benchmark statistics reported in Table I;
//! * [`stride`] — the 2-stride (alphabet-squaring) transform;
//! * [`bitwidth`] — the 8-bit → 4-bit transform Impala executes on;
//! * [`bitset::BitSet`] — the dynamic bit set shared by the simulator and
//!   the hardware models.
//!
//! # Examples
//!
//! Compile a regex and inspect the automaton:
//!
//! ```
//! use cama_core::regex::compile;
//!
//! let nfa = compile("(a|b)e*cd+")?;
//! assert_eq!(nfa.len(), 5);
//! assert_eq!(nfa.start_states().count(), 2);
//! # Ok::<(), cama_core::Error>(())
//! ```

pub mod anml;
pub mod bitset;
pub mod bitwidth;
pub mod compile;
pub mod compiled;
pub mod error;
pub mod graph;
pub mod json;
pub mod kernel;
pub mod mnrl;
pub mod nfa;
pub mod regex;
pub mod stats;
pub mod stride;
pub mod symbol;
pub mod xml;

pub use compile::{CacheStats, CompileReport, PlanCache, PlanRemap, StructureHash};
pub use compiled::{CompiledAutomaton, CompiledEncodedStridedAutomaton, CompiledStridedAutomaton};
pub use error::{Error, Result};
pub use nfa::{BuildOptions, Nfa, NfaBuilder, StartKind, Ste, SteId};
pub use symbol::{SymbolClass, ALPHABET};
