//! Bit-width transformation: rewrite an 8-bit-alphabet NFA into an
//! equivalent automaton over 4-bit nibbles.
//!
//! This is the FlexAmata-style transformation Impala executes on: every
//! byte is processed as two 4-bit symbols (high nibble first), which lets
//! the state-matching memory shrink from 256 rows to 16. A symbol class
//! `C ⊆ Σ` is decomposed into at most 16 *rectangles* `H × L` (high
//! nibble set × low nibble set); each rectangle becomes a high-STE
//! feeding a low-STE.
//!
//! The resulting automaton is a plain [`Nfa`] whose alphabet is `0..=15`;
//! it must be driven with [`chain`](NibbleNfa::chain) sub-steps per
//! original symbol, with start states injected only on the first sub-step
//! (the simulator's multi-step mode does exactly this).

use crate::nfa::{Nfa, NfaBuilder, SteId};
use crate::symbol::SymbolClass;

/// An NFA over 4-bit symbols plus its phase length.
#[derive(Clone, Debug)]
pub struct NibbleNfa {
    /// The nibble automaton; symbols are `0..=15`.
    pub nfa: Nfa,
    /// Sub-steps per original input symbol (2 for a byte NFA).
    pub chain: usize,
}

/// Splits a byte class into maximal `(high, low)` nibble rectangles.
///
/// Rectangles are disjoint in their high components and their union over
/// `(h, l)` pairs reproduces the class exactly. At most 16 rectangles are
/// produced (one per distinct low-set).
///
/// # Examples
///
/// ```
/// use cama_core::bitwidth::rectangles;
/// use cama_core::SymbolClass;
///
/// // [\x00-\x1f] = highs {0,1} × lows {0..15}: one rectangle
/// let rects = rectangles(&SymbolClass::from_range(0x00, 0x1f));
/// assert_eq!(rects.len(), 1);
/// assert_eq!(rects[0].0.len(), 2);
/// assert_eq!(rects[0].1.len(), 16);
/// ```
pub fn rectangles(class: &SymbolClass) -> Vec<(SymbolClass, SymbolClass)> {
    // Group high nibbles by identical low-sets.
    let mut low_sets: Vec<(u16, SymbolClass)> = Vec::new();
    for high in 0..16u8 {
        let mut lows: u16 = 0;
        for low in 0..16u8 {
            if class.contains(high << 4 | low) {
                lows |= 1 << low;
            }
        }
        if lows == 0 {
            continue;
        }
        match low_sets.iter_mut().find(|(mask, _)| *mask == lows) {
            Some((_, highs)) => highs.insert(high),
            None => {
                let mut highs = SymbolClass::EMPTY;
                highs.insert(high);
                low_sets.push((lows, highs));
            }
        }
    }
    low_sets
        .into_iter()
        .map(|(lows, highs)| {
            let low_class: SymbolClass = (0..16u8).filter(|&l| lows >> l & 1 == 1).collect();
            (highs, low_class)
        })
        .collect()
}

/// Transforms a byte-alphabet NFA into an equivalent nibble NFA.
///
/// Every original STE becomes one (high, low) STE pair per rectangle of
/// its class; the low STEs inherit the report, the high STEs inherit the
/// start kind, and every original edge `u -> v` becomes edges from all of
/// `u`'s low STEs to all of `v`'s high STEs.
///
/// # Panics
///
/// Panics if the input automaton has an STE with an empty class (such
/// automata cannot be built through [`NfaBuilder`] anyway).
pub fn to_nibble_nfa(nfa: &Nfa) -> NibbleNfa {
    let mut builder = NfaBuilder::with_name(format!("{}-nibble", nfa.name()));
    // Per original state: the ids of its high STEs and low STEs.
    let mut highs: Vec<Vec<SteId>> = Vec::with_capacity(nfa.len());
    let mut lows: Vec<Vec<SteId>> = Vec::with_capacity(nfa.len());

    for ste in nfa.stes() {
        let rects = rectangles(&ste.class);
        assert!(
            !rects.is_empty(),
            "empty symbol class in bitwidth transform"
        );
        let mut my_highs = Vec::with_capacity(rects.len());
        let mut my_lows = Vec::with_capacity(rects.len());
        for (high_class, low_class) in rects {
            let h = builder.add_ste(high_class);
            let l = builder.add_ste(low_class);
            builder.set_start(h, ste.start);
            if let Some(code) = ste.report {
                builder.set_report(l, code);
            }
            builder.add_edge(h, l);
            my_highs.push(h);
            my_lows.push(l);
        }
        highs.push(my_highs);
        lows.push(my_lows);
    }

    for (from, to) in nfa.edges() {
        for &l in &lows[from.index()] {
            for &h in &highs[to.index()] {
                builder.add_edge(l, h);
            }
        }
    }

    NibbleNfa {
        nfa: builder
            .build()
            .expect("nibble transform preserves validity"),
        chain: 2,
    }
}

/// Splits a byte into `(high, low)` nibbles in stream order.
pub fn nibbles_of(byte: u8) -> [u8; 2] {
    [byte >> 4, byte & 0x0f]
}

/// Expands a byte stream into its nibble stream (high nibble first).
pub fn to_nibble_stream(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.extend_from_slice(&nibbles_of(b));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::StartKind;
    use crate::regex;

    #[test]
    fn rectangles_cover_exactly() {
        let class: SymbolClass = [0x12u8, 0x15, 0x32, 0x35, 0x4a].into_iter().collect();
        let rects = rectangles(&class);
        // {1,3} × {2,5} and {4} × {a}
        assert_eq!(rects.len(), 2);
        let mut covered = SymbolClass::EMPTY;
        for (h, l) in &rects {
            for hi in h.iter() {
                for lo in l.iter() {
                    assert!(class.contains(hi << 4 | lo));
                    covered.insert(hi << 4 | lo);
                }
            }
        }
        assert_eq!(covered, class);
    }

    #[test]
    fn rectangles_of_full_class() {
        let rects = rectangles(&SymbolClass::FULL);
        assert_eq!(rects.len(), 1);
        assert_eq!(rects[0].0.len(), 16);
        assert_eq!(rects[0].1.len(), 16);
    }

    #[test]
    fn rectangle_count_is_bounded() {
        // Diagonal class: each high nibble has a distinct low set.
        let class: SymbolClass = (0..16u8).map(|i| i << 4 | i).collect();
        let rects = rectangles(&class);
        assert_eq!(rects.len(), 16);
    }

    #[test]
    fn transform_sizes() {
        let nfa = regex::compile("ab").unwrap();
        let nibble = to_nibble_nfa(&nfa);
        assert_eq!(nibble.chain, 2);
        // One rectangle per singleton class: 2 STEs each.
        assert_eq!(nibble.nfa.len(), 4);
        // h->l within states plus l->h across the edge.
        assert_eq!(nibble.nfa.num_edges(), 3);
    }

    #[test]
    fn transform_preserves_reports_and_starts() {
        let nfa = regex::compile("a").unwrap();
        let nibble = to_nibble_nfa(&nfa).nfa;
        assert_eq!(nibble.start_states().count(), 1);
        assert_eq!(nibble.reporting_states().count(), 1);
        assert_eq!(nibble.ste(SteId(0)).start, StartKind::AllInput);
        assert!(nibble.ste(SteId(1)).is_reporting());
    }

    #[test]
    fn nibble_stream_expansion() {
        assert_eq!(to_nibble_stream(&[0xab, 0x01]), vec![0xa, 0xb, 0x0, 0x1]);
        assert_eq!(nibbles_of(0xf3), [0xf, 0x3]);
    }

    #[test]
    fn nibble_alphabet_is_16() {
        let nfa = regex::compile("[a-z0-9]x").unwrap();
        let nibble = to_nibble_nfa(&nfa).nfa;
        assert!(nibble.alphabet().len() <= 16);
        for ste in nibble.stes() {
            assert!(ste.class.iter().all(|s| s < 16));
        }
    }
}
