//! The homogeneous (ANML-style) non-deterministic finite automaton.
//!
//! In a homogeneous NFA every incoming transition of a state carries the
//! same symbol class, so the class can be attached to the state itself.
//! The paper calls such states *state transition elements* (STEs); this is
//! the automaton model used by the Micron AP, Cache Automaton, Impala,
//! eAP, and CAMA alike.

use crate::error::{Error, Result};
use crate::symbol::SymbolClass;
use std::fmt;

/// Identifier of a state-transition element inside one [`Nfa`].
///
/// Ids are dense indices: `0..nfa.len()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SteId(pub u32);

impl SteId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ste{}", self.0)
    }
}

impl From<u32> for SteId {
    fn from(raw: u32) -> Self {
        SteId(raw)
    }
}

/// When a state is self-enabling (an ANML start state).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum StartKind {
    /// Not a start state: only enabled by a predecessor's activation.
    #[default]
    None,
    /// Enabled on every input symbol (ANML `start="all-input"`), the
    /// common choice for unanchored pattern scanning.
    AllInput,
    /// Enabled only for the first input symbol (ANML
    /// `start="start-of-data"`), i.e. an anchored pattern.
    StartOfData,
}

impl StartKind {
    /// Returns `true` for either start flavor.
    pub fn is_start(self) -> bool {
        self != StartKind::None
    }
}

/// One state-transition element.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Ste {
    /// The symbol class this STE matches against the input.
    pub class: SymbolClass,
    /// Whether (and how) the STE self-enables.
    pub start: StartKind,
    /// Report code emitted when the STE is active; `None` for
    /// non-reporting states.
    pub report: Option<u32>,
}

impl Ste {
    /// Creates a plain, non-start, non-reporting STE.
    pub fn new(class: SymbolClass) -> Self {
        Ste {
            class,
            start: StartKind::None,
            report: None,
        }
    }

    /// Returns `true` if the STE reports when active.
    pub fn is_reporting(&self) -> bool {
        self.report.is_some()
    }
}

/// An immutable homogeneous NFA: STEs plus an activation graph.
///
/// Build one with [`NfaBuilder`], the regex compiler, or the ANML/MNRL
/// readers.
///
/// # Examples
///
/// ```
/// use cama_core::{NfaBuilder, StartKind, SymbolClass};
///
/// // (a|b) d  — two alternatives feeding one reporting state
/// let mut builder = NfaBuilder::new();
/// let a = builder.add_ste(SymbolClass::singleton(b'a'));
/// let b = builder.add_ste(SymbolClass::singleton(b'b'));
/// let d = builder.add_ste(SymbolClass::singleton(b'd'));
/// builder.set_start(a, StartKind::AllInput);
/// builder.set_start(b, StartKind::AllInput);
/// builder.set_report(d, 0);
/// builder.add_edge(a, d);
/// builder.add_edge(b, d);
/// let nfa = builder.build()?;
/// assert_eq!(nfa.len(), 3);
/// assert_eq!(nfa.num_edges(), 2);
/// # Ok::<(), cama_core::Error>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Nfa {
    stes: Vec<Ste>,
    /// Flattened adjacency: `out[offsets[i]..offsets[i+1]]` are the
    /// successors of STE `i`, sorted and deduplicated.
    out: Vec<SteId>,
    offsets: Vec<u32>,
    name: String,
}

impl Nfa {
    /// Number of STEs.
    pub fn len(&self) -> usize {
        self.stes.len()
    }

    /// Returns `true` if the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.stes.is_empty()
    }

    /// Total number of activation edges.
    pub fn num_edges(&self) -> usize {
        self.out.len()
    }

    /// The automaton's name (from ANML/MNRL, or set at build time).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Borrows the STE with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ste(&self, id: SteId) -> &Ste {
        &self.stes[id.index()]
    }

    /// All STEs in id order.
    pub fn stes(&self) -> &[Ste] {
        &self.stes
    }

    /// Successor ids of `id` (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn successors(&self, id: SteId) -> &[SteId] {
        let i = id.index();
        &self.out[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates `(from, to)` over every edge.
    pub fn edges(&self) -> impl Iterator<Item = (SteId, SteId)> + '_ {
        (0..self.len()).flat_map(move |i| {
            let from = SteId(i as u32);
            self.successors(from).iter().map(move |&to| (from, to))
        })
    }

    /// Ids of all start states (either kind).
    pub fn start_states(&self) -> impl Iterator<Item = SteId> + '_ {
        self.stes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.start.is_start())
            .map(|(i, _)| SteId(i as u32))
    }

    /// Ids of all reporting states.
    pub fn reporting_states(&self) -> impl Iterator<Item = SteId> + '_ {
        self.stes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_reporting())
            .map(|(i, _)| SteId(i as u32))
    }

    /// The alphabet actually used: the union of all symbol classes.
    ///
    /// Table I of the paper reports `|alphabet|` per benchmark (256 for
    /// most, 2 for BlockRings, 114 for ExactMatch, …).
    pub fn alphabet(&self) -> SymbolClass {
        let mut alphabet = SymbolClass::EMPTY;
        for ste in &self.stes {
            alphabet = alphabet | ste.class;
        }
        alphabet
    }

    /// Builds the reverse adjacency (predecessors per state).
    pub fn predecessors(&self) -> Vec<Vec<SteId>> {
        let mut preds = vec![Vec::new(); self.len()];
        for (from, to) in self.edges() {
            preds[to.index()].push(from);
        }
        preds
    }

    /// Decomposes the automaton into a new [`NfaBuilder`] for editing.
    pub fn into_builder(self) -> NfaBuilder {
        let mut builder = NfaBuilder::with_name(self.name.clone());
        for ste in &self.stes {
            let id = builder.add_ste(ste.class);
            builder.set_start(id, ste.start);
            if let Some(code) = ste.report {
                builder.set_report(id, code);
            }
        }
        for (from, to) in self.edges() {
            builder.add_edge(from, to);
        }
        builder
    }
}

/// Incremental constructor for [`Nfa`].
#[derive(Clone, Debug, Default)]
pub struct NfaBuilder {
    stes: Vec<Ste>,
    edges: Vec<(SteId, SteId)>,
    name: String,
}

impl NfaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder for a named automaton.
    pub fn with_name(name: impl Into<String>) -> Self {
        NfaBuilder {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Number of STEs added so far.
    pub fn len(&self) -> usize {
        self.stes.len()
    }

    /// Returns `true` if no STE has been added.
    pub fn is_empty(&self) -> bool {
        self.stes.is_empty()
    }

    /// Adds an STE with the given symbol class and returns its id.
    pub fn add_ste(&mut self, class: SymbolClass) -> SteId {
        let id = SteId(self.stes.len() as u32);
        self.stes.push(Ste::new(class));
        id
    }

    /// Sets the start kind of an existing STE.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_start(&mut self, id: SteId, start: StartKind) -> &mut Self {
        self.stes[id.index()].start = start;
        self
    }

    /// Marks an existing STE as reporting with the given report code.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_report(&mut self, id: SteId, code: u32) -> &mut Self {
        self.stes[id.index()].report = Some(code);
        self
    }

    /// Adds an activation edge `from -> to`. Duplicates are merged at
    /// [`build`](Self::build) time.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_edge(&mut self, from: SteId, to: SteId) -> &mut Self {
        assert!(from.index() < self.stes.len(), "edge source out of range");
        assert!(to.index() < self.stes.len(), "edge target out of range");
        self.edges.push((from, to));
        self
    }

    /// Finalizes the automaton.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAutomaton`] if any STE has an empty symbol
    /// class, or if a state is unreachable from every start state while
    /// not being a start state itself (dead hardware that the mapper
    /// would silently waste).
    pub fn build(self) -> Result<Nfa> {
        self.build_with_options(BuildOptions::default())
    }

    /// Finalizes the automaton with explicit validity options.
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build); checks can be individually disabled.
    pub fn build_with_options(mut self, options: BuildOptions) -> Result<Nfa> {
        if options.reject_empty_classes {
            for (i, ste) in self.stes.iter().enumerate() {
                if ste.class.is_empty() {
                    return Err(Error::InvalidAutomaton(format!(
                        "ste{i} has an empty symbol class"
                    )));
                }
            }
        }

        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.stes.len();
        let mut offsets = vec![0u32; n + 1];
        for &(from, _) in &self.edges {
            offsets[from.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let out: Vec<SteId> = self.edges.iter().map(|&(_, to)| to).collect();

        let nfa = Nfa {
            stes: self.stes,
            out,
            offsets,
            name: self.name,
        };

        if options.reject_unreachable {
            let reachable = reachable_from_starts(&nfa);
            if let Some(dead) = (0..n).find(|&i| !reachable[i]) {
                return Err(Error::InvalidAutomaton(format!(
                    "ste{dead} is unreachable from any start state"
                )));
            }
        }
        Ok(nfa)
    }
}

/// Validity checks applied by [`NfaBuilder::build_with_options`].
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Reject STEs whose symbol class is empty (default `true`).
    pub reject_empty_classes: bool,
    /// Reject states unreachable from every start state (default `false`;
    /// synthetic workloads and partial parses may legitimately contain
    /// them).
    pub reject_unreachable: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            reject_empty_classes: true,
            reject_unreachable: false,
        }
    }
}

fn reachable_from_starts(nfa: &Nfa) -> Vec<bool> {
    let mut seen = vec![false; nfa.len()];
    let mut stack: Vec<SteId> = nfa.start_states().collect();
    for &s in &stack {
        seen[s.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &next in nfa.successors(id) {
            if !seen[next.index()] {
                seen[next.index()] = true;
                stack.push(next);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(symbols: &[u8]) -> Nfa {
        let mut builder = NfaBuilder::new();
        let ids: Vec<SteId> = symbols
            .iter()
            .map(|&s| builder.add_ste(SymbolClass::singleton(s)))
            .collect();
        builder.set_start(ids[0], StartKind::AllInput);
        builder.set_report(*ids.last().unwrap(), 7);
        for pair in ids.windows(2) {
            builder.add_edge(pair[0], pair[1]);
        }
        builder.build().unwrap()
    }

    #[test]
    fn build_simple_chain() {
        let nfa = chain(b"abc");
        assert_eq!(nfa.len(), 3);
        assert_eq!(nfa.num_edges(), 2);
        assert_eq!(nfa.successors(SteId(0)), &[SteId(1)]);
        assert_eq!(nfa.successors(SteId(2)), &[]);
        assert_eq!(nfa.start_states().collect::<Vec<_>>(), vec![SteId(0)]);
        assert_eq!(nfa.reporting_states().collect::<Vec<_>>(), vec![SteId(2)]);
        assert_eq!(nfa.ste(SteId(2)).report, Some(7));
    }

    #[test]
    fn duplicate_edges_are_merged() {
        let mut builder = NfaBuilder::new();
        let a = builder.add_ste(SymbolClass::singleton(b'a'));
        let b = builder.add_ste(SymbolClass::singleton(b'b'));
        builder.set_start(a, StartKind::AllInput);
        builder.add_edge(a, b);
        builder.add_edge(a, b);
        let nfa = builder.build().unwrap();
        assert_eq!(nfa.num_edges(), 1);
    }

    #[test]
    fn empty_class_is_rejected() {
        let mut builder = NfaBuilder::new();
        let a = builder.add_ste(SymbolClass::EMPTY);
        builder.set_start(a, StartKind::AllInput);
        assert!(matches!(builder.build(), Err(Error::InvalidAutomaton(_))));
    }

    #[test]
    fn unreachable_state_detection_is_optional() {
        let mut builder = NfaBuilder::new();
        let a = builder.add_ste(SymbolClass::singleton(b'a'));
        let _orphan = builder.add_ste(SymbolClass::singleton(b'b'));
        builder.set_start(a, StartKind::AllInput);
        let lenient = builder.clone().build();
        assert!(lenient.is_ok());
        let strict = builder.build_with_options(BuildOptions {
            reject_unreachable: true,
            ..BuildOptions::default()
        });
        assert!(strict.is_err());
    }

    #[test]
    fn alphabet_is_union_of_classes() {
        let nfa = chain(b"ab");
        let alphabet = nfa.alphabet();
        assert_eq!(alphabet.len(), 2);
        assert!(alphabet.contains(b'a') && alphabet.contains(b'b'));
    }

    #[test]
    fn predecessors_inverts_edges() {
        let nfa = chain(b"abc");
        let preds = nfa.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![SteId(0)]);
        assert_eq!(preds[2], vec![SteId(1)]);
    }

    #[test]
    fn edges_iterator_matches_successors() {
        let nfa = chain(b"abcd");
        let edges: Vec<_> = nfa.edges().collect();
        assert_eq!(
            edges,
            vec![
                (SteId(0), SteId(1)),
                (SteId(1), SteId(2)),
                (SteId(2), SteId(3))
            ]
        );
    }

    #[test]
    fn into_builder_roundtrips() {
        let nfa = chain(b"xyz");
        let rebuilt = nfa.clone().into_builder().build().unwrap();
        assert_eq!(nfa, rebuilt);
    }

    #[test]
    fn ste_display() {
        assert_eq!(SteId(12).to_string(), "ste12");
        assert_eq!(SteId::from(3u32), SteId(3));
    }

    #[test]
    fn start_kind_queries() {
        assert!(StartKind::AllInput.is_start());
        assert!(StartKind::StartOfData.is_start());
        assert!(!StartKind::None.is_start());
        assert_eq!(StartKind::default(), StartKind::None);
    }
}
