//! Multi-stride transformation: rewrite an NFA so that it consumes two
//! symbols per cycle (alphabet squaring, after Becchi & Crowley).
//!
//! Strided execution doubles throughput at the cost of more states. For
//! a homogeneous NFA the natural 2-stride unit is the *edge*: a strided
//! state `e(u,v)` matches the pair `(a, b)` when `a ∈ class(u)`,
//! `b ∈ class(v)` and `u -> v` is an edge — a *rectangle*
//! `class(u) × class(v)` over the squared alphabet. Start states gain
//! odd-phase entry states (a match may begin on the second symbol of a
//! pair) and reporting states gain even-phase report states (a match may
//! end on the first symbol of a pair).
//!
//! The paper evaluates 2-stride CAMA (64×256 match CAM, 256×256 local
//! switch) against 4-stride Impala in Figure 13; this module provides
//! the strided automaton both of those models execute.

use crate::bitwidth::{rectangles, NibbleNfa};
use crate::nfa::{Nfa, NfaBuilder, StartKind, SteId};
use crate::symbol::SymbolClass;

/// Which symbol of the pair a strided report corresponds to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReportPhase {
    /// The original match ended on the first symbol of the pair
    /// (original offset `2p`).
    First,
    /// The original match ended on the second symbol (offset `2p + 1`).
    Second,
}

/// One state of a 2-strided automaton: a rectangle over symbol pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StridedSte {
    /// Accept set for the first symbol of the pair.
    pub first: SymbolClass,
    /// Accept set for the second symbol of the pair.
    pub second: SymbolClass,
    /// Self-enabling behaviour, in pair cycles.
    pub start: StartKind,
    /// Report code and phase, if reporting.
    pub report: Option<(u32, ReportPhase)>,
}

impl StridedSte {
    /// Returns `true` if the state matches the pair `(a, b)`.
    pub fn matches(&self, a: u8, b: u8) -> bool {
        self.first.contains(a) && self.second.contains(b)
    }
}

/// A homogeneous NFA over the squared alphabet (pairs of bytes).
#[derive(Clone, Debug)]
pub struct StridedNfa {
    states: Vec<StridedSte>,
    successors: Vec<Vec<u32>>,
    name: String,
}

impl StridedNfa {
    /// Number of strided states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.successors.iter().map(Vec::len).sum()
    }

    /// The automaton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Borrows a strided state.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn state(&self, index: usize) -> &StridedSte {
        &self.states[index]
    }

    /// All states in index order.
    pub fn states(&self) -> &[StridedSte] {
        &self.states
    }

    /// Successor indices of a state.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn successors(&self, index: usize) -> &[u32] {
        &self.successors[index]
    }

    /// Assembles a strided automaton from parts — used by the sharded
    /// plan builder to construct each shard's renumbered local
    /// automaton.
    ///
    /// # Panics
    ///
    /// Panics if `successors` does not parallel `states` or references
    /// a state out of range.
    pub(crate) fn from_parts(
        states: Vec<StridedSte>,
        successors: Vec<Vec<u32>>,
        name: String,
    ) -> StridedNfa {
        assert_eq!(states.len(), successors.len(), "successor table mismatch");
        assert!(
            successors
                .iter()
                .all(|succ| succ.iter().all(|&s| (s as usize) < states.len())),
            "successor out of range"
        );
        StridedNfa {
            states,
            successors,
            name,
        }
    }

    /// The per-state connected-component index (undirected activation
    /// connectivity) plus the component count, numbered largest
    /// component first — the strided counterpart of
    /// [`graph::component_ids`](crate::graph::component_ids), used by
    /// the per-component shard strategy.
    pub fn component_ids(&self) -> (Vec<u32>, usize) {
        let n = self.len();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (from, succs) in self.successors.iter().enumerate() {
            for &to in succs {
                preds[to as usize].push(from as u32);
            }
        }
        let mut component = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        for seed in 0..n {
            if component[seed] != u32::MAX {
                continue;
            }
            let id = sizes.len() as u32;
            let mut size = 0usize;
            let mut stack = vec![seed];
            component[seed] = id;
            while let Some(v) = stack.pop() {
                size += 1;
                for &next in self.successors[v].iter().chain(&preds[v]) {
                    if component[next as usize] == u32::MAX {
                        component[next as usize] = id;
                        stack.push(next as usize);
                    }
                }
            }
            sizes.push(size);
        }
        // Renumber largest component first (ties broken by discovery
        // order, i.e. lowest member id) so component-balanced sharding
        // packs decreasing sizes, like the byte-side mapper does.
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by_key(|&c| (usize::MAX - sizes[c], c));
        let mut renumber = vec![0u32; sizes.len()];
        for (rank, &c) in order.iter().enumerate() {
            renumber[c] = rank as u32;
        }
        for c in &mut component {
            *c = renumber[*c as usize];
        }
        (component, sizes.len())
    }

    /// Builds the 2-stride automaton for `nfa`.
    ///
    /// The construction creates:
    ///
    /// * one *edge state* `e(u,v)` per original edge;
    /// * one *odd-entry state* per `all-input` start (a match beginning on
    ///   the second symbol of a pair);
    /// * one *even-report state* per reporting state (a match ending on
    ///   the first symbol of a pair).
    ///
    /// Inputs of odd length are handled by the strided simulator padding
    /// convention (see `cama-sim`).
    pub fn from_nfa(nfa: &Nfa) -> StridedNfa {
        Builder::new(nfa).build()
    }

    /// Converts the strided automaton into a nibble NFA with four
    /// sub-steps per pair — the automaton 4-stride Impala executes
    /// (two bytes, i.e. four nibbles, per cycle).
    pub fn to_nibble_nfa(&self) -> NibbleNfa {
        let mut builder = NfaBuilder::with_name(format!("{}-nibble", self.name));
        // Per strided state: entry (first-high) STEs and exit (second-low) STEs.
        let mut entries: Vec<Vec<SteId>> = Vec::with_capacity(self.len());
        let mut exits: Vec<Vec<SteId>> = Vec::with_capacity(self.len());

        for state in &self.states {
            let first_rects = rectangles(&state.first);
            let second_rects = rectangles(&state.second);
            let mut my_entries = Vec::new();
            let mut my_first_lows = Vec::new();
            for (high, low) in &first_rects {
                let h = builder.add_ste(*high);
                let l = builder.add_ste(*low);
                builder.set_start(h, state.start);
                if let Some((code, ReportPhase::First)) = state.report {
                    builder.set_report(l, code);
                }
                builder.add_edge(h, l);
                my_entries.push(h);
                my_first_lows.push(l);
            }
            let mut my_exits = Vec::new();
            for (high, low) in &second_rects {
                let h = builder.add_ste(*high);
                let l = builder.add_ste(*low);
                if let Some((code, ReportPhase::Second)) = state.report {
                    builder.set_report(l, code);
                }
                builder.add_edge(h, l);
                for &fl in &my_first_lows {
                    builder.add_edge(fl, h);
                }
                my_exits.push(l);
            }
            entries.push(my_entries);
            exits.push(my_exits);
        }

        for (from, successors) in self.successors.iter().enumerate() {
            for &to in successors {
                for &x in &exits[from] {
                    for &e in &entries[to as usize] {
                        builder.add_edge(x, e);
                    }
                }
            }
        }

        NibbleNfa {
            nfa: builder.build().expect("stride nibble transform is valid"),
            chain: 4,
        }
    }
}

struct Builder<'a> {
    nfa: &'a Nfa,
    states: Vec<StridedSte>,
    successors: Vec<Vec<u32>>,
    /// Strided states with first-component `u`, per original state.
    by_first: Vec<Vec<u32>>,
    /// `edge_state[edge index]` — parallel to `nfa.edges()` iteration.
    edge_states: Vec<(SteId, SteId, u32)>,
    /// Even-phase report state per original reporting state.
    report_states: Vec<(SteId, u32)>,
}

impl<'a> Builder<'a> {
    fn new(nfa: &'a Nfa) -> Self {
        Builder {
            nfa,
            states: Vec::new(),
            successors: Vec::new(),
            by_first: vec![Vec::new(); nfa.len()],
            edge_states: Vec::new(),
            report_states: Vec::new(),
        }
    }

    fn add_state(&mut self, state: StridedSte) -> u32 {
        let id = self.states.len() as u32;
        self.states.push(state);
        self.successors.push(Vec::new());
        id
    }

    fn build(mut self) -> StridedNfa {
        // Edge states e(u, v).
        for (u, v) in self.nfa.edges() {
            let v_ste = self.nfa.ste(v);
            let state = StridedSte {
                first: self.nfa.ste(u).class,
                second: v_ste.class,
                start: self.nfa.ste(u).start,
                report: v_ste.report.map(|code| (code, ReportPhase::Second)),
            };
            let id = self.add_state(state);
            self.by_first[u.index()].push(id);
            self.edge_states.push((u, v, id));
        }

        // Even-phase report states r(w).
        let reporting: Vec<SteId> = self.nfa.reporting_states().collect();
        for w in reporting {
            let ste = self.nfa.ste(w);
            let code = ste.report.expect("reporting state has a code");
            let id = self.add_state(StridedSte {
                first: ste.class,
                second: SymbolClass::FULL,
                start: ste.start,
                report: Some((code, ReportPhase::First)),
            });
            self.by_first[w.index()].push(id);
            self.report_states.push((w, id));
        }

        // Odd-entry states s(u) for all-input starts: the match begins on
        // the second symbol of a pair.
        let starts: Vec<SteId> = self
            .nfa
            .start_states()
            .filter(|&s| self.nfa.ste(s).start == StartKind::AllInput)
            .collect();
        let mut odd_entries = Vec::new();
        for u in starts {
            let ste = self.nfa.ste(u);
            let id = self.add_state(StridedSte {
                first: SymbolClass::FULL,
                second: ste.class,
                start: StartKind::AllInput,
                report: ste.report.map(|code| (code, ReportPhase::Second)),
            });
            odd_entries.push((u, id));
        }

        // Transitions. A strided state whose pair ends with original state
        // `v` active enables, for every `w ∈ succ(v)`, all strided states
        // with first-component `w`.
        let edges: Vec<(SteId, SteId, u32)> = self.edge_states.clone();
        for (_, v, id) in edges {
            self.connect_from_second(id, v);
        }
        for (u, id) in odd_entries {
            self.connect_from_second(id, u);
        }

        for successors in &mut self.successors {
            successors.sort_unstable();
            successors.dedup();
        }

        StridedNfa {
            states: self.states,
            successors: self.successors,
            name: format!("{}-2stride", self.nfa.name()),
        }
    }

    /// Wires `id -> every strided state whose first component is a
    /// successor of `v``.
    fn connect_from_second(&mut self, id: u32, v: SteId) {
        let mut targets = Vec::new();
        for &w in self.nfa.successors(v) {
            targets.extend(self.by_first[w.index()].iter().copied());
        }
        self.successors[id as usize].extend(targets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex;

    #[test]
    fn sizes_for_chain() {
        // abc: edges a->b, b->c; reports on c; start on a.
        let nfa = regex::compile("abc").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        // 2 edge states + 1 report state + 1 odd-entry state.
        assert_eq!(strided.len(), 4);
        assert!(!strided.is_empty());
        assert_eq!(strided.name(), "regex-2stride");
    }

    #[test]
    fn edge_state_rectangles() {
        let nfa = regex::compile("ab").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let edge = strided
            .states()
            .iter()
            .find(|s| s.report.map(|(_, p)| p) == Some(ReportPhase::Second) && !s.first.is_full())
            .expect("edge state exists");
        assert!(edge.matches(b'a', b'b'));
        assert!(!edge.matches(b'a', b'c'));
        assert!(!edge.matches(b'x', b'b'));
    }

    #[test]
    fn report_phases_present() {
        let nfa = regex::compile("ab").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let phases: Vec<ReportPhase> = strided
            .states()
            .iter()
            .filter_map(|s| s.report.map(|(_, p)| p))
            .collect();
        assert!(phases.contains(&ReportPhase::First));
        assert!(phases.contains(&ReportPhase::Second));
    }

    #[test]
    fn self_loop_strides_to_self_loop() {
        let nfa = regex::compile("ad+").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        // e(d,d) must be its own successor.
        let (idx, _) = strided
            .states()
            .iter()
            .enumerate()
            .find(|(_, s)| s.first.contains(b'd') && s.second.contains(b'd') && !s.first.is_full())
            .expect("d,d edge state");
        assert!(strided.successors(idx).contains(&(idx as u32)));
    }

    #[test]
    fn nibble_conversion_has_chain_4() {
        let nfa = regex::compile("ab").unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        let nibble = strided.to_nibble_nfa();
        assert_eq!(nibble.chain, 4);
        assert!(nibble.nfa.len() >= strided.len() * 4 - 2);
        assert!(nibble.nfa.reporting_states().count() >= 1);
    }

    #[test]
    fn anchored_start_has_no_odd_entry() {
        use crate::regex::{compile_ast, parse, CompileOptions};
        let ast = parse("ab").unwrap();
        let nfa = compile_ast(
            &ast,
            CompileOptions {
                anchored: true,
                report_code: 0,
            },
        )
        .unwrap();
        let strided = StridedNfa::from_nfa(&nfa);
        // Edge state + report state only: anchored patterns cannot begin
        // mid-pair.
        assert_eq!(strided.len(), 2);
        assert!(strided
            .states()
            .iter()
            .all(|s| s.start != StartKind::AllInput));
    }
}
