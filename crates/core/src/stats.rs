//! Per-automaton statistics, matching the columns of Table I.
//!
//! For each benchmark the paper reports the average symbol-class size
//! (raw and after Negation Optimization) and the alphabet size; these
//! drive the encoding-selection algorithm in `cama-encoding`.

use crate::nfa::Nfa;
use crate::symbol::{SymbolClass, ALPHABET};

/// Symbol-class and alphabet statistics for one automaton.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassStats {
    /// Number of STEs.
    pub num_states: usize,
    /// Mean symbol-class size over all STEs.
    pub avg_class_size: f64,
    /// Mean of `min(|C|, 256 - |C|)` — the class size once negation
    /// optimization may store the complement.
    pub avg_class_size_no: f64,
    /// Largest raw class size.
    pub max_class_size: usize,
    /// Alphabet size: `|union of all classes|`.
    pub alphabet_size: usize,
    /// Number of states for which NO stores the complement.
    pub negated_states: usize,
    /// Total raw symbols summed over all classes (the CAM entry count a
    /// naive BCAM/ASCII design would need).
    pub total_symbols: usize,
    /// Total symbols after NO.
    pub total_symbols_no: usize,
}

/// Computes [`ClassStats`] for an automaton.
///
/// # Examples
///
/// ```
/// use cama_core::{regex, stats};
///
/// let nfa = regex::compile("[a-d]x")?;
/// let s = stats::class_stats(&nfa);
/// assert_eq!(s.num_states, 2);
/// assert_eq!(s.alphabet_size, 5);
/// assert!((s.avg_class_size - 2.5).abs() < 1e-12);
/// # Ok::<(), cama_core::Error>(())
/// ```
pub fn class_stats(nfa: &Nfa) -> ClassStats {
    let mut alphabet = SymbolClass::EMPTY;
    let mut total = 0usize;
    let mut total_no = 0usize;
    let mut max = 0usize;
    let mut negated = 0usize;
    for ste in nfa.stes() {
        let len = ste.class.len();
        alphabet = alphabet | ste.class;
        total += len;
        total_no += ste.class.negation_optimized_len();
        max = max.max(len);
        if ste.class.prefers_negation() {
            negated += 1;
        }
    }
    let n = nfa.len().max(1) as f64;
    ClassStats {
        num_states: nfa.len(),
        avg_class_size: total as f64 / n,
        avg_class_size_no: total_no as f64 / n,
        max_class_size: max,
        alphabet_size: alphabet.len(),
        negated_states: negated,
        total_symbols: total,
        total_symbols_no: total_no,
    }
}

/// Histogram of symbol-class sizes, bucketed like the paper's
/// observation that "86% of states match at most eight symbols".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassSizeHistogram {
    /// `buckets[k]` counts states whose class size (after NO) falls into
    /// the k-th bucket: 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65–128.
    pub buckets: [usize; 8],
    /// Count of states accepting more than 128 symbols even after NO
    /// (impossible for 8-bit alphabets, kept for robustness).
    pub overflow: usize,
}

impl ClassSizeHistogram {
    /// Fraction of states with NO-size at most eight symbols.
    pub fn fraction_at_most_8(&self) -> f64 {
        let total: usize = self.buckets.iter().sum::<usize>() + self.overflow;
        if total == 0 {
            return 0.0;
        }
        let small: usize = self.buckets[..4].iter().sum();
        small as f64 / total as f64
    }
}

/// Computes the class-size histogram (after NO) for an automaton.
pub fn class_size_histogram(nfa: &Nfa) -> ClassSizeHistogram {
    let mut histogram = ClassSizeHistogram::default();
    for ste in nfa.stes() {
        let size = ste.class.negation_optimized_len();
        debug_assert!(size <= ALPHABET / 2);
        let bucket = match size {
            0..=1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            17..=32 => 5,
            33..=64 => 6,
            65..=128 => 7,
            _ => {
                histogram.overflow += 1;
                continue;
            }
        };
        histogram.buckets[bucket] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{NfaBuilder, StartKind};

    fn nfa_with_classes(classes: &[SymbolClass]) -> Nfa {
        let mut b = NfaBuilder::new();
        for &c in classes {
            let id = b.add_ste(c);
            b.set_start(id, StartKind::AllInput);
        }
        b.build().unwrap()
    }

    #[test]
    fn averages_and_alphabet() {
        let nfa = nfa_with_classes(&[
            SymbolClass::singleton(b'a'),
            SymbolClass::from_range(b'a', b'd'),
        ]);
        let s = class_stats(&nfa);
        assert_eq!(s.num_states, 2);
        assert!((s.avg_class_size - 2.5).abs() < 1e-12);
        assert_eq!(s.alphabet_size, 4);
        assert_eq!(s.max_class_size, 4);
        assert_eq!(s.total_symbols, 5);
    }

    #[test]
    fn negation_shrinks_no_average() {
        let nfa = nfa_with_classes(&[!SymbolClass::singleton(b'x')]);
        let s = class_stats(&nfa);
        assert!((s.avg_class_size - 255.0).abs() < 1e-12);
        assert!((s.avg_class_size_no - 1.0).abs() < 1e-12);
        assert_eq!(s.negated_states, 1);
        assert_eq!(s.total_symbols_no, 1);
    }

    #[test]
    fn histogram_buckets() {
        let nfa = nfa_with_classes(&[
            SymbolClass::singleton(b'a'),
            SymbolClass::from_range(b'a', b'b'),
            SymbolClass::from_range(b'a', b'h'),
            SymbolClass::from_range(0, 99),
        ]);
        let h = class_size_histogram(&nfa);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[7], 1);
        assert!((h.fraction_at_most_8() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_nfa_is_safe() {
        let nfa = NfaBuilder::new().build().unwrap();
        let s = class_stats(&nfa);
        assert_eq!(s.num_states, 0);
        assert_eq!(s.avg_class_size, 0.0);
        let h = class_size_histogram(&nfa);
        assert_eq!(h.fraction_at_most_8(), 0.0);
    }
}
