//! Symbols and symbol classes.
//!
//! A *symbol* is one 8-bit input character. A *symbol class* is the set of
//! symbols accepted by a state-transition element (STE); the paper calls
//! `|class|` the *symbol class size*. Classes are stored as 256-bit sets so
//! that union/intersection/complement — the operations the encoding and
//! negation-optimization pipelines live on — are a handful of word ops.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// The number of distinct 8-bit symbols.
pub const ALPHABET: usize = 256;

/// A set of 8-bit symbols, e.g. the accept set of one STE.
///
/// # Examples
///
/// ```
/// use cama_core::SymbolClass;
///
/// let digits = SymbolClass::from_range(b'0', b'9');
/// assert!(digits.contains(b'7'));
/// assert_eq!(digits.len(), 10);
/// let not_digits = !digits;
/// assert!(!not_digits.contains(b'7'));
/// assert_eq!(not_digits.len(), 246);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SymbolClass {
    words: [u64; 4],
}

impl SymbolClass {
    /// The empty class (matches nothing).
    pub const EMPTY: SymbolClass = SymbolClass { words: [0; 4] };

    /// The full class (matches every 8-bit symbol; ANML `*`).
    pub const FULL: SymbolClass = SymbolClass { words: [!0; 4] };

    /// Creates an empty class. Equivalent to [`SymbolClass::EMPTY`].
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a class containing a single symbol.
    pub fn singleton(symbol: u8) -> Self {
        let mut class = Self::EMPTY;
        class.insert(symbol);
        class
    }

    /// Creates a class containing the inclusive range `lo..=hi`.
    ///
    /// An inverted range (`lo > hi`) yields the empty class.
    pub fn from_range(lo: u8, hi: u8) -> Self {
        let mut class = Self::EMPTY;
        if lo <= hi {
            for s in lo..=hi {
                class.insert(s);
            }
        }
        class
    }

    /// Adds `symbol` to the class.
    pub fn insert(&mut self, symbol: u8) {
        self.words[symbol as usize / 64] |= 1u64 << (symbol % 64);
    }

    /// Removes `symbol` from the class.
    pub fn remove(&mut self, symbol: u8) {
        self.words[symbol as usize / 64] &= !(1u64 << (symbol % 64));
    }

    /// Tests membership of `symbol`.
    pub fn contains(&self, symbol: u8) -> bool {
        self.words[symbol as usize / 64] >> (symbol % 64) & 1 == 1
    }

    /// The symbol class size: how many symbols the class accepts.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the class accepts no symbol.
    pub fn is_empty(&self) -> bool {
        self.words == [0; 4]
    }

    /// Returns `true` if the class accepts every 8-bit symbol.
    pub fn is_full(&self) -> bool {
        self.words == [!0; 4]
    }

    /// The paper's negation-optimized size: `min(|C|, 256 - |C|)`.
    ///
    /// This is the number of CAM-resident symbols once Negation
    /// Optimization (NO) may store the complement and invert the match.
    pub fn negation_optimized_len(&self) -> usize {
        self.len().min(ALPHABET - self.len())
    }

    /// Returns `true` if NO would store the complement of this class
    /// (i.e. the complement is strictly smaller).
    pub fn prefers_negation(&self) -> bool {
        ALPHABET - self.len() < self.len()
    }

    /// Iterates the accepted symbols in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            class: self,
            word_idx: 0,
            current: self.words[0],
        }
    }

    /// Returns `true` if `self` and `other` accept any common symbol.
    pub fn intersects(&self, other: &SymbolClass) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if every symbol of `self` is accepted by `other`.
    pub fn is_subset(&self, other: &SymbolClass) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// The lowest accepted symbol, if any.
    pub fn min_symbol(&self) -> Option<u8> {
        self.iter().next()
    }

    /// Raw 256-bit representation (four little-endian `u64` words).
    pub fn as_words(&self) -> &[u64; 4] {
        &self.words
    }
}

impl BitOr for SymbolClass {
    type Output = SymbolClass;

    fn bitor(self, rhs: SymbolClass) -> SymbolClass {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(&rhs.words) {
            *a |= b;
        }
        SymbolClass { words }
    }
}

impl BitAnd for SymbolClass {
    type Output = SymbolClass;

    fn bitand(self, rhs: SymbolClass) -> SymbolClass {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(&rhs.words) {
            *a &= b;
        }
        SymbolClass { words }
    }
}

impl Not for SymbolClass {
    type Output = SymbolClass;

    fn not(self) -> SymbolClass {
        let mut words = self.words;
        for w in words.iter_mut() {
            *w = !*w;
        }
        SymbolClass { words }
    }
}

impl FromIterator<u8> for SymbolClass {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut class = SymbolClass::EMPTY;
        for s in iter {
            class.insert(s);
        }
        class
    }
}

impl Extend<u8> for SymbolClass {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for s in iter {
            self.insert(s);
        }
    }
}

impl From<u8> for SymbolClass {
    fn from(symbol: u8) -> Self {
        SymbolClass::singleton(symbol)
    }
}

fn write_symbol(f: &mut fmt::Formatter<'_>, s: u8) -> fmt::Result {
    match s {
        b'\\' | b']' | b'[' | b'^' | b'-' => write!(f, "\\{}", s as char),
        0x20..=0x7e => write!(f, "{}", s as char),
        b'\n' => write!(f, "\\n"),
        b'\r' => write!(f, "\\r"),
        b'\t' => write!(f, "\\t"),
        _ => write!(f, "\\x{s:02x}"),
    }
}

impl fmt::Display for SymbolClass {
    /// Formats the class in ANML/regex character-class syntax, negating
    /// when the complement is smaller (e.g. `[^\x00]`), and collapsing
    /// runs into ranges (e.g. `[a-z0-9]`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            return write!(f, "*");
        }
        let (class, negated) = if self.prefers_negation() {
            (!*self, true)
        } else {
            (*self, false)
        };
        write!(f, "[")?;
        if negated {
            write!(f, "^")?;
        }
        let symbols: Vec<u8> = class.iter().collect();
        let mut i = 0;
        while i < symbols.len() {
            let start = symbols[i];
            let mut end = start;
            while i + 1 < symbols.len() && Some(symbols[i + 1]) == end.checked_add(1) {
                end = symbols[i + 1];
                i += 1;
            }
            write_symbol(f, start)?;
            if u16::from(end) > u16::from(start) + 1 {
                write!(f, "-")?;
                write_symbol(f, end)?;
            } else if u16::from(end) == u16::from(start) + 1 {
                write_symbol(f, end)?;
            }
            i += 1;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for SymbolClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymbolClass({self})")
    }
}

/// Iterator over accepted symbols, created by [`SymbolClass::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    class: &'a SymbolClass,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= 4 {
                return None;
            }
            self.current = self.class.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.word_idx * 64 + bit) as u8)
    }
}

impl<'a> IntoIterator for &'a SymbolClass {
    type Item = u8;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_contains() {
        let class = SymbolClass::singleton(b'a');
        assert!(class.contains(b'a'));
        assert!(!class.contains(b'b'));
        assert_eq!(class.len(), 1);
    }

    #[test]
    fn range_membership() {
        let class = SymbolClass::from_range(b'0', b'9');
        assert_eq!(class.len(), 10);
        assert!(class.contains(b'0'));
        assert!(class.contains(b'9'));
        assert!(!class.contains(b'a'));
    }

    #[test]
    fn inverted_range_is_empty() {
        assert!(SymbolClass::from_range(10, 5).is_empty());
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(SymbolClass::FULL.len(), 256);
        assert!(SymbolClass::FULL.is_full());
        assert!(SymbolClass::EMPTY.is_empty());
        assert_eq!(SymbolClass::new(), SymbolClass::EMPTY);
    }

    #[test]
    fn complement_roundtrip() {
        let class = SymbolClass::from_range(0x20, 0x7e);
        let complement = !class;
        assert_eq!(complement.len(), 256 - class.len());
        assert_eq!(!complement, class);
    }

    #[test]
    fn union_and_intersection() {
        let a = SymbolClass::from_range(b'a', b'f');
        let b = SymbolClass::from_range(b'd', b'k');
        assert_eq!((a | b).len(), 11);
        assert_eq!((a & b).len(), 3);
        assert!(a.intersects(&b));
    }

    #[test]
    fn subset_relation() {
        let small = SymbolClass::from_range(b'b', b'c');
        let big = SymbolClass::from_range(b'a', b'z');
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
    }

    #[test]
    fn negation_optimized_len_picks_smaller_side() {
        let small = SymbolClass::from_range(0, 3);
        assert_eq!(small.negation_optimized_len(), 4);
        assert!(!small.prefers_negation());
        let big = !small;
        assert_eq!(big.len(), 252);
        assert_eq!(big.negation_optimized_len(), 4);
        assert!(big.prefers_negation());
    }

    #[test]
    fn display_formats_ranges() {
        let class = SymbolClass::from_range(b'a', b'd');
        assert_eq!(class.to_string(), "[a-d]");
        let negated: SymbolClass = !SymbolClass::singleton(b'x');
        assert_eq!(negated.to_string(), "[^x]");
        assert_eq!(SymbolClass::FULL.to_string(), "*");
    }

    #[test]
    fn display_escapes_specials() {
        let class = SymbolClass::singleton(b']');
        assert_eq!(class.to_string(), "[\\]]");
        let class = SymbolClass::singleton(0x00);
        assert_eq!(class.to_string(), "[\\x00]");
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut class = SymbolClass::new();
        class.extend([200u8, 5, 63, 64, 128]);
        assert_eq!(class.iter().collect::<Vec<_>>(), vec![5, 63, 64, 128, 200]);
    }

    #[test]
    fn from_iterator_collects() {
        let class: SymbolClass = (b'a'..=b'e').collect();
        assert_eq!(class.len(), 5);
        assert_eq!(class.min_symbol(), Some(b'a'));
    }
}
