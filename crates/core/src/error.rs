//! Error types shared by the core crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while building, parsing, or transforming automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An STE id referenced a state that does not exist.
    UnknownState(String),
    /// An automaton failed a structural validity check.
    InvalidAutomaton(String),
    /// A regular expression failed to parse; the offset is in bytes.
    RegexSyntax { offset: usize, message: String },
    /// A regular expression expanded past the configured state budget.
    RegexTooLarge { limit: usize },
    /// An ANML document failed to parse.
    AnmlSyntax { line: usize, message: String },
    /// An MNRL document failed to parse.
    MnrlSyntax { offset: usize, message: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownState(id) => write!(f, "unknown state id `{id}`"),
            Error::InvalidAutomaton(msg) => write!(f, "invalid automaton: {msg}"),
            Error::RegexSyntax { offset, message } => {
                write!(f, "regex syntax error at byte {offset}: {message}")
            }
            Error::RegexTooLarge { limit } => {
                write!(f, "regex expansion exceeds the state budget of {limit}")
            }
            Error::AnmlSyntax { line, message } => {
                write!(f, "ANML parse error at line {line}: {message}")
            }
            Error::MnrlSyntax { offset, message } => {
                write!(f, "MNRL parse error at byte {offset}: {message}")
            }
        }
    }
}

impl StdError for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = Error::UnknownState("q42".into());
        assert_eq!(err.to_string(), "unknown state id `q42`");
        let err = Error::RegexSyntax {
            offset: 3,
            message: "unbalanced parenthesis".into(),
        };
        assert!(err.to_string().contains("byte 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
