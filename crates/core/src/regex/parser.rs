//! Recursive-descent regex parser producing an [`Ast`].

use super::ast::Ast;
use crate::error::{Error, Result};
use crate::symbol::SymbolClass;

/// Hard ceiling on positions created by desugaring counted repetitions;
/// prevents `a{1000}{1000}` style blowups.
pub const DEFAULT_REPEAT_BUDGET: usize = 1 << 16;

/// Parses `pattern` into an [`Ast`].
///
/// # Errors
///
/// Returns [`Error::RegexSyntax`] with a byte offset for malformed input,
/// or [`Error::RegexTooLarge`] when counted repetitions expand beyond
/// [`DEFAULT_REPEAT_BUDGET`] positions.
///
/// # Examples
///
/// ```
/// use cama_core::regex::parse;
///
/// let ast = parse("[a-c]+x")?;
/// assert_eq!(ast.num_positions(), 2);
/// # Ok::<(), cama_core::Error>(())
/// ```
pub fn parse(pattern: &str) -> Result<Ast> {
    let mut parser = Parser {
        input: pattern.as_bytes(),
        pos: 0,
    };
    let ast = parser.alternation()?;
    if parser.pos != parser.input.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    if ast.num_positions() > DEFAULT_REPEAT_BUDGET {
        return Err(Error::RegexTooLarge {
            limit: DEFAULT_REPEAT_BUDGET,
        });
    }
    Ok(ast)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error::RegexSyntax {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, expected: u8) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast> {
        let mut ast = self.concatenation()?;
        while self.eat(b'|') {
            let rhs = self.concatenation()?;
            ast = Ast::alternate(ast, rhs);
        }
        Ok(ast)
    }

    fn concatenation(&mut self) -> Result<Ast> {
        let mut ast = Ast::Empty;
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            let atom = self.repetition()?;
            ast = Ast::concat(ast, atom);
        }
        Ok(ast)
    }

    fn repetition(&mut self) -> Result<Ast> {
        let mut ast = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    ast = Ast::Star(Box::new(ast));
                }
                Some(b'+') => {
                    self.pos += 1;
                    ast = Ast::Plus(Box::new(ast));
                }
                Some(b'?') => {
                    self.pos += 1;
                    ast = Ast::Optional(Box::new(ast));
                }
                Some(b'{') => {
                    self.pos += 1;
                    let (min, max) = self.counted_bounds()?;
                    ast = desugar_repeat(ast, min, max, self.pos)?;
                }
                _ => break,
            }
        }
        Ok(ast)
    }

    fn counted_bounds(&mut self) -> Result<(u32, Option<u32>)> {
        let min = self.number()?;
        let max = if self.eat(b',') {
            if self.peek() == Some(b'}') {
                None
            } else {
                Some(self.number()?)
            }
        } else {
            Some(min)
        };
        if !self.eat(b'}') {
            return Err(self.error("expected `}` to close counted repetition"));
        }
        if let Some(max) = max {
            if max < min {
                return Err(self.error("counted repetition has max < min"));
            }
        }
        Ok((min, max))
    }

    fn number(&mut self) -> Result<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("digits are ascii")
            .parse()
            .map_err(|_| self.error("repetition count overflows"))
    }

    fn atom(&mut self) -> Result<Ast> {
        match self.bump() {
            Some(b'(') => {
                let inner = self.alternation()?;
                if !self.eat(b')') {
                    return Err(self.error("expected `)`"));
                }
                Ok(inner)
            }
            Some(b'[') => self.class().map(Ast::Class),
            Some(b'.') => Ok(Ast::Class(SymbolClass::FULL)),
            Some(b'\\') => self.escape().map(Ast::Class),
            Some(b'*') | Some(b'+') | Some(b'?') | Some(b'{') => {
                self.pos -= 1;
                Err(self.error("quantifier with nothing to repeat"))
            }
            Some(b')') => {
                self.pos -= 1;
                Err(self.error("unmatched `)`"))
            }
            Some(b'^') | Some(b'$') => {
                // Anchors are handled by compile options (start-of-data
                // start states); inline anchors are not supported.
                self.pos -= 1;
                Err(self.error("inline anchors are not supported; use CompileOptions::anchored"))
            }
            Some(literal) => Ok(Ast::Class(SymbolClass::singleton(literal))),
            None => Err(self.error("unexpected end of pattern")),
        }
    }

    fn escape(&mut self) -> Result<SymbolClass> {
        match self.bump() {
            Some(b'n') => Ok(SymbolClass::singleton(b'\n')),
            Some(b'r') => Ok(SymbolClass::singleton(b'\r')),
            Some(b't') => Ok(SymbolClass::singleton(b'\t')),
            Some(b'0') => Ok(SymbolClass::singleton(0)),
            Some(b'd') => Ok(class_digit()),
            Some(b'D') => Ok(!class_digit()),
            Some(b'w') => Ok(class_word()),
            Some(b'W') => Ok(!class_word()),
            Some(b's') => Ok(class_space()),
            Some(b'S') => Ok(!class_space()),
            Some(b'x') => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                Ok(SymbolClass::singleton(hi * 16 + lo))
            }
            Some(punct) => Ok(SymbolClass::singleton(punct)),
            None => Err(self.error("dangling escape at end of pattern")),
        }
    }

    fn hex_digit(&mut self) -> Result<u8> {
        match self.bump() {
            Some(b) if b.is_ascii_digit() => Ok(b - b'0'),
            Some(b) if (b'a'..=b'f').contains(&b) => Ok(b - b'a' + 10),
            Some(b) if (b'A'..=b'F').contains(&b) => Ok(b - b'A' + 10),
            _ => Err(self.error("expected a hex digit after \\x")),
        }
    }

    /// Parses the interior of `[...]`; the opening bracket is consumed.
    fn class(&mut self) -> Result<SymbolClass> {
        let negated = self.eat(b'^');
        let mut class = SymbolClass::EMPTY;
        let mut first = true;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated character class")),
                Some(b']') if !first => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            first = false;
            let lo = self.class_member()?;
            // A range needs a single symbol on the left and a `-` that is
            // not the closing member.
            if self.peek() == Some(b'-')
                && self.input.get(self.pos + 1).copied() != Some(b']')
                && self.input.get(self.pos + 1).is_some()
            {
                if let ClassMember::Symbol(start) = lo {
                    self.pos += 1; // consume '-'
                    match self.class_member()? {
                        ClassMember::Symbol(end) => {
                            if end < start {
                                return Err(self.error("character range is out of order"));
                            }
                            class.extend(start..=end);
                            continue;
                        }
                        ClassMember::Set(_) => {
                            return Err(self.error("class escape cannot close a range"))
                        }
                    }
                }
            }
            match lo {
                ClassMember::Symbol(s) => class.insert(s),
                ClassMember::Set(set) => class = class | set,
            }
        }
        Ok(if negated { !class } else { class })
    }

    fn class_member(&mut self) -> Result<ClassMember> {
        match self.bump() {
            Some(b'\\') => {
                let start = self.pos;
                let set = self.escape()?;
                // Single-symbol escapes can participate in ranges.
                let was_class_escape = matches!(
                    self.input.get(start),
                    Some(b'd' | b'D' | b'w' | b'W' | b's' | b'S')
                );
                if set.len() == 1 && !was_class_escape {
                    Ok(ClassMember::Symbol(set.min_symbol().expect("len is 1")))
                } else {
                    Ok(ClassMember::Set(set))
                }
            }
            Some(b) => Ok(ClassMember::Symbol(b)),
            None => Err(self.error("unterminated character class")),
        }
    }
}

enum ClassMember {
    Symbol(u8),
    Set(SymbolClass),
}

fn class_digit() -> SymbolClass {
    SymbolClass::from_range(b'0', b'9')
}

fn class_word() -> SymbolClass {
    let mut class = class_digit();
    class.extend(b'a'..=b'z');
    class.extend(b'A'..=b'Z');
    class.insert(b'_');
    class
}

fn class_space() -> SymbolClass {
    [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c]
        .into_iter()
        .collect()
}

fn desugar_repeat(ast: Ast, min: u32, max: Option<u32>, offset: usize) -> Result<Ast> {
    let unit = ast.num_positions().max(1);
    let copies = max.unwrap_or(min.max(1)) as usize;
    if unit.saturating_mul(copies) > DEFAULT_REPEAT_BUDGET {
        return Err(Error::RegexTooLarge {
            limit: DEFAULT_REPEAT_BUDGET,
        });
    }
    let _ = offset;
    let mut result = Ast::Empty;
    for _ in 0..min {
        result = Ast::concat(result, ast.clone());
    }
    match max {
        None => {
            // {m,}: m-1 copies then one Plus (or a Star when m == 0).
            if min == 0 {
                result = Ast::Star(Box::new(ast));
            } else {
                result = match result {
                    Ast::Concat(mut children) => {
                        let last = children.pop().expect("min >= 1");
                        let plus = Ast::Plus(Box::new(last));
                        children
                            .into_iter()
                            .fold(Ast::Empty, Ast::concat)
                            .pipe_concat(plus)
                    }
                    single => Ast::Plus(Box::new(single)),
                };
            }
        }
        Some(max) => {
            for _ in min..max {
                result = Ast::concat(result, Ast::Optional(Box::new(ast.clone())));
            }
        }
    }
    Ok(result)
}

trait PipeConcat {
    fn pipe_concat(self, rhs: Ast) -> Ast;
}

impl PipeConcat for Ast {
    fn pipe_concat(self, rhs: Ast) -> Ast {
        Ast::concat(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(c: u8) -> Ast {
        Ast::Class(SymbolClass::singleton(c))
    }

    #[test]
    fn literals_and_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![lit(b'a'), lit(b'b')])
        );
        assert_eq!(parse("a").unwrap(), lit(b'a'));
    }

    #[test]
    fn alternation_and_groups() {
        let ast = parse("(a|b)c").unwrap();
        assert_eq!(
            ast,
            Ast::Concat(vec![Ast::Alternate(vec![lit(b'a'), lit(b'b')]), lit(b'c')])
        );
    }

    #[test]
    fn quantifiers() {
        assert_eq!(parse("a*").unwrap(), Ast::Star(Box::new(lit(b'a'))));
        assert_eq!(parse("a+").unwrap(), Ast::Plus(Box::new(lit(b'a'))));
        assert_eq!(parse("a?").unwrap(), Ast::Optional(Box::new(lit(b'a'))));
    }

    #[test]
    fn counted_repetition_exact() {
        let ast = parse("a{3}").unwrap();
        assert_eq!(ast.num_positions(), 3);
        assert!(!ast.is_nullable());
    }

    #[test]
    fn counted_repetition_range() {
        let ast = parse("a{2,4}").unwrap();
        assert_eq!(ast.num_positions(), 4);
        let ast = parse("(ab){1,2}").unwrap();
        assert_eq!(ast.num_positions(), 4);
    }

    #[test]
    fn counted_repetition_open() {
        let ast = parse("a{2,}").unwrap();
        assert_eq!(ast.num_positions(), 2);
        assert!(matches!(ast, Ast::Concat(_)));
        let ast = parse("a{0,}").unwrap();
        assert!(matches!(ast, Ast::Star(_)));
    }

    #[test]
    fn classes_and_ranges() {
        let ast = parse("[a-c]").unwrap();
        match ast {
            Ast::Class(class) => {
                assert_eq!(class.len(), 3);
                assert!(class.contains(b'b'));
            }
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn negated_class() {
        match parse("[^a]").unwrap() {
            Ast::Class(class) => {
                assert_eq!(class.len(), 255);
                assert!(!class.contains(b'a'));
            }
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn class_with_escapes_and_specials() {
        match parse(r"[\]\-x]").unwrap() {
            Ast::Class(class) => {
                assert!(class.contains(b']'));
                assert!(class.contains(b'-'));
                assert!(class.contains(b'x'));
                assert_eq!(class.len(), 3);
            }
            _ => panic!("expected class"),
        }
        // ']' first in class is a literal member.
        match parse("[]a]").unwrap() {
            Ast::Class(class) => {
                assert!(class.contains(b']'));
                assert!(class.contains(b'a'));
            }
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn class_escape_sets() {
        match parse(r"[\d_]").unwrap() {
            Ast::Class(class) => {
                assert_eq!(class.len(), 11);
                assert!(class.contains(b'_'));
            }
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn dot_and_hex_escape() {
        assert_eq!(parse(".").unwrap(), Ast::Class(SymbolClass::FULL));
        assert_eq!(parse(r"\x41").unwrap(), lit(b'A'));
        assert_eq!(parse(r"\xff").unwrap(), lit(0xff));
    }

    #[test]
    fn trailing_dash_is_literal() {
        match parse("[a-]").unwrap() {
            Ast::Class(class) => {
                assert!(class.contains(b'a'));
                assert!(class.contains(b'-'));
            }
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn syntax_errors() {
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("[a").is_err());
        assert!(parse("a{2,1}").is_err());
        assert!(parse(r"\").is_err());
        assert!(parse("a{x}").is_err());
        assert!(parse("^a").is_err());
        assert!(parse("[z-a]").is_err());
        assert!(parse(r"[a-\d]").is_err());
    }

    #[test]
    fn repeat_budget_enforced() {
        assert!(matches!(
            parse("a{70000}"),
            Err(Error::RegexTooLarge { .. })
        ));
        assert!(matches!(
            parse("(a{300}){300}"),
            Err(Error::RegexTooLarge { .. })
        ));
    }

    #[test]
    fn nested_quantifier_applies() {
        let ast = parse("a*?").unwrap();
        assert!(ast.is_nullable());
    }
}
