//! Regular-expression front end: parse POSIX-ish regex syntax and compile
//! it into a homogeneous NFA via the Glushkov (position) construction.
//!
//! This is the path by which the Regex benchmark suites (Bro217, Dotstar,
//! Ranges, ExactMatch, …) become ANML-style automata. The constructed NFA
//! has exactly one STE per character position of the pattern — the same
//! property Figure 1 of the paper shows for `(a|b)e*cd+`.
//!
//! # Supported syntax
//!
//! * literals, `.` (any byte), escapes `\n \r \t \0 \xHH \\` and
//!   punctuation escapes;
//! * character classes `[a-z0-9]`, negated classes `[^\x00]`, class
//!   escapes `\d \D \w \W \s \S`;
//! * grouping `(...)`, alternation `|`;
//! * quantifiers `* + ?` and counted repetition `{m}`, `{m,}`, `{m,n}`.
//!
//! # Examples
//!
//! ```
//! use cama_core::regex::{compile, compile_set};
//!
//! let nfa = compile("(a|b)e*cd+")?;
//! assert_eq!(nfa.len(), 5); // one STE per position
//!
//! let set = compile_set(&["abc", "[0-9]{3}"])?;
//! assert_eq!(set.reporting_states().count(), 2);
//! # Ok::<(), cama_core::Error>(())
//! ```

mod ast;
mod glushkov;
mod parser;
pub mod reference;

pub use ast::Ast;
pub use glushkov::{compile_ast, CompileOptions};
pub use parser::{parse, DEFAULT_REPEAT_BUDGET};

use crate::error::Result;
use crate::nfa::Nfa;

/// Parses and compiles a single pattern with default options
/// (unanchored start, report code 0).
///
/// # Errors
///
/// Returns a syntax error for malformed patterns, a budget error for
/// patterns whose counted repetitions expand past the default state
/// budget, and an invalid-automaton error for patterns that accept the
/// empty string (a homogeneous NFA cannot report a zero-length match).
pub fn compile(pattern: &str) -> Result<Nfa> {
    compile_with(pattern, CompileOptions::default())
}

/// Parses and compiles a single pattern with explicit options.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with(pattern: &str, options: CompileOptions) -> Result<Nfa> {
    let ast = parse(pattern)?;
    compile_ast(&ast, options)
}

/// Compiles several patterns into one automaton; pattern `i` reports with
/// code `i`. This is how multi-rule benchmarks (Snort-like rule sets) are
/// assembled.
///
/// # Errors
///
/// See [`compile`]; the first failing pattern aborts the set.
pub fn compile_set(patterns: &[&str]) -> Result<Nfa> {
    compile_set_with(patterns, CompileOptions::default())
}

/// [`compile_set`] with explicit options; the per-pattern report code
/// overrides `options.report_code`.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_set_with(patterns: &[&str], options: CompileOptions) -> Result<Nfa> {
    let mut builder = crate::nfa::NfaBuilder::with_name("regex-set");
    for (i, pattern) in patterns.iter().enumerate() {
        let ast = parse(pattern)?;
        let sub = compile_ast(
            &ast,
            CompileOptions {
                report_code: i as u32,
                ..options
            },
        )?;
        let base = builder.len() as u32;
        for ste in sub.stes() {
            let id = builder.add_ste(ste.class);
            builder.set_start(id, ste.start);
            if let Some(code) = ste.report {
                builder.set_report(id, code);
            }
        }
        for (from, to) in sub.edges() {
            builder.add_edge((from.0 + base).into(), (to.0 + base).into());
        }
    }
    builder.build()
}
