//! The regex abstract syntax tree.
//!
//! Counted repetitions are desugared by the parser, so the tree only
//! carries the four Kleene-style combinators plus leaves; this keeps the
//! Glushkov construction a direct structural recursion.

use crate::symbol::SymbolClass;
use std::fmt;

/// A parsed regular expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single-position leaf: one symbol drawn from the class.
    Class(SymbolClass),
    /// Sequential composition. Invariant: two or more children.
    Concat(Vec<Ast>),
    /// Alternation. Invariant: two or more children.
    Alternate(Vec<Ast>),
    /// Zero or more repetitions (`*`).
    Star(Box<Ast>),
    /// One or more repetitions (`+`).
    Plus(Box<Ast>),
    /// Zero or one occurrence (`?`).
    Optional(Box<Ast>),
}

impl Ast {
    /// Number of leaf positions — the number of STEs the Glushkov
    /// construction will create.
    pub fn num_positions(&self) -> usize {
        match self {
            Ast::Empty => 0,
            Ast::Class(_) => 1,
            Ast::Concat(children) | Ast::Alternate(children) => {
                children.iter().map(Ast::num_positions).sum()
            }
            Ast::Star(inner) | Ast::Plus(inner) | Ast::Optional(inner) => inner.num_positions(),
        }
    }

    /// Returns `true` if the expression accepts the empty string.
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Empty | Ast::Star(_) | Ast::Optional(_) => true,
            Ast::Class(_) => false,
            Ast::Concat(children) => children.iter().all(Ast::is_nullable),
            Ast::Alternate(children) => children.iter().any(Ast::is_nullable),
            Ast::Plus(inner) => inner.is_nullable(),
        }
    }

    /// Concatenates two expressions, flattening nested concatenations and
    /// dropping `Empty` units.
    pub fn concat(a: Ast, b: Ast) -> Ast {
        let mut children = Vec::new();
        for ast in [a, b] {
            match ast {
                Ast::Empty => {}
                Ast::Concat(inner) => children.extend(inner),
                other => children.push(other),
            }
        }
        match children.len() {
            0 => Ast::Empty,
            1 => children.pop().expect("len checked"),
            _ => Ast::Concat(children),
        }
    }

    /// Alternates two expressions, flattening nested alternations.
    pub fn alternate(a: Ast, b: Ast) -> Ast {
        let mut children = Vec::new();
        for ast in [a, b] {
            match ast {
                Ast::Alternate(inner) => children.extend(inner),
                other => children.push(other),
            }
        }
        match children.len() {
            0 => Ast::Empty,
            1 => children.pop().expect("len checked"),
            _ => Ast::Alternate(children),
        }
    }
}

impl fmt::Display for Ast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ast::Empty => Ok(()),
            Ast::Class(class) => write!(f, "{class}"),
            Ast::Concat(children) => {
                for child in children {
                    match child {
                        Ast::Alternate(_) => write!(f, "({child})")?,
                        _ => write!(f, "{child}")?,
                    }
                }
                Ok(())
            }
            Ast::Alternate(children) => {
                for (i, child) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{child}")?;
                }
                Ok(())
            }
            Ast::Star(inner) => write_quantified(f, inner, '*'),
            Ast::Plus(inner) => write_quantified(f, inner, '+'),
            Ast::Optional(inner) => write_quantified(f, inner, '?'),
        }
    }
}

fn write_quantified(f: &mut fmt::Formatter<'_>, inner: &Ast, op: char) -> fmt::Result {
    match inner {
        Ast::Class(_) => write!(f, "{inner}{op}"),
        _ => write!(f, "({inner}){op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(c: u8) -> Ast {
        Ast::Class(SymbolClass::singleton(c))
    }

    #[test]
    fn num_positions_counts_leaves() {
        let ast = Ast::concat(lit(b'a'), Ast::Star(Box::new(lit(b'b'))));
        assert_eq!(ast.num_positions(), 2);
        assert_eq!(Ast::Empty.num_positions(), 0);
    }

    #[test]
    fn nullability() {
        assert!(Ast::Empty.is_nullable());
        assert!(!lit(b'a').is_nullable());
        assert!(Ast::Star(Box::new(lit(b'a'))).is_nullable());
        assert!(!Ast::Plus(Box::new(lit(b'a'))).is_nullable());
        assert!(Ast::Optional(Box::new(lit(b'a'))).is_nullable());
        let alt = Ast::alternate(lit(b'a'), Ast::Empty);
        assert!(alt.is_nullable());
    }

    #[test]
    fn concat_flattens_and_drops_empty() {
        let ast = Ast::concat(Ast::concat(lit(b'a'), lit(b'b')), Ast::Empty);
        assert_eq!(ast, Ast::Concat(vec![lit(b'a'), lit(b'b')]));
        assert_eq!(Ast::concat(Ast::Empty, Ast::Empty), Ast::Empty);
        assert_eq!(Ast::concat(Ast::Empty, lit(b'x')), lit(b'x'));
    }

    #[test]
    fn alternate_flattens() {
        let ast = Ast::alternate(Ast::alternate(lit(b'a'), lit(b'b')), lit(b'c'));
        assert_eq!(ast, Ast::Alternate(vec![lit(b'a'), lit(b'b'), lit(b'c')]));
    }

    #[test]
    fn display_roundtrip_shape() {
        let ast = Ast::concat(
            Ast::alternate(lit(b'a'), lit(b'b')),
            Ast::concat(
                Ast::Star(Box::new(lit(b'e'))),
                Ast::concat(lit(b'c'), Ast::Plus(Box::new(lit(b'd')))),
            ),
        );
        assert_eq!(ast.to_string(), "([a]|[b])[e]*[c][d]+");
    }
}
