//! A deliberately naive regex matcher used as a test oracle.
//!
//! This module evaluates an [`Ast`] directly by structural recursion over
//! the input, with none of the position-automaton machinery, so that the
//! Glushkov compiler and the cycle simulator can be validated against an
//! independent implementation. It is exponential in the worst case and is
//! only intended for short test inputs.

use super::ast::Ast;
use std::collections::BTreeSet;

/// Returns the set of end offsets `e` such that `input[start..e]` is
/// accepted by `ast` (anchored at `start` on the left).
pub fn match_ends(ast: &Ast, input: &[u8], start: usize) -> BTreeSet<usize> {
    match ast {
        Ast::Empty => BTreeSet::from([start]),
        Ast::Class(class) => {
            let mut ends = BTreeSet::new();
            if let Some(&b) = input.get(start) {
                if class.contains(b) {
                    ends.insert(start + 1);
                }
            }
            ends
        }
        Ast::Concat(children) => {
            let mut fronts = BTreeSet::from([start]);
            for child in children {
                let mut next = BTreeSet::new();
                for &f in &fronts {
                    next.extend(match_ends(child, input, f));
                }
                fronts = next;
                if fronts.is_empty() {
                    break;
                }
            }
            fronts
        }
        Ast::Alternate(children) => children
            .iter()
            .flat_map(|child| match_ends(child, input, start))
            .collect(),
        Ast::Star(inner) => closure_ends(inner, input, start, true),
        Ast::Plus(inner) => closure_ends(inner, input, start, false),
        Ast::Optional(inner) => {
            let mut ends = match_ends(inner, input, start);
            ends.insert(start);
            ends
        }
    }
}

fn closure_ends(inner: &Ast, input: &[u8], start: usize, include_zero: bool) -> BTreeSet<usize> {
    let mut ends = BTreeSet::new();
    if include_zero {
        ends.insert(start);
    }
    let mut frontier = BTreeSet::from([start]);
    loop {
        let mut next = BTreeSet::new();
        for &f in &frontier {
            for e in match_ends(inner, input, f) {
                // Zero-length iterations would loop forever; the Glushkov
                // side never consumes zero symbols per iteration either.
                if e > f && !ends.contains(&e) {
                    next.insert(e);
                }
            }
        }
        if next.is_empty() {
            return ends;
        }
        ends.extend(next.iter().copied());
        frontier = next;
    }
}

/// Offsets (inclusive, of the last matched symbol) at which an unanchored
/// scan of `input` reports a match of `ast` — the oracle for the
/// simulator's report stream.
///
/// # Examples
///
/// ```
/// use cama_core::regex::{parse, reference};
///
/// let ast = parse("ab+")?;
/// let ends = reference::scan_report_offsets(&ast, b"zabbz");
/// assert_eq!(ends, vec![2, 3]);
/// # Ok::<(), cama_core::Error>(())
/// ```
pub fn scan_report_offsets(ast: &Ast, input: &[u8]) -> Vec<usize> {
    let mut offsets = BTreeSet::new();
    for start in 0..input.len() {
        for end in match_ends(ast, input, start) {
            if end > start {
                offsets.insert(end - 1);
            }
        }
    }
    offsets.into_iter().collect()
}

/// Like [`scan_report_offsets`] but anchored: matches must begin at
/// offset zero.
pub fn anchored_report_offsets(ast: &Ast, input: &[u8]) -> Vec<usize> {
    match_ends(ast, input, 0)
        .into_iter()
        .filter(|&e| e > 0)
        .map(|e| e - 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    #[test]
    fn literal_scan() {
        let ast = parse("abc").unwrap();
        assert_eq!(scan_report_offsets(&ast, b"xxabcxabc"), vec![4, 8]);
        assert!(scan_report_offsets(&ast, b"ab").is_empty());
    }

    #[test]
    fn star_and_plus() {
        let ast = parse("ae*c").unwrap();
        assert_eq!(scan_report_offsets(&ast, b"aeec"), vec![3]);
        assert_eq!(scan_report_offsets(&ast, b"ac"), vec![1]);
        let ast = parse("ae+c").unwrap();
        assert!(scan_report_offsets(&ast, b"ac").is_empty());
    }

    #[test]
    fn alternation() {
        let ast = parse("ab|cd").unwrap();
        assert_eq!(scan_report_offsets(&ast, b"abcd"), vec![1, 3]);
    }

    #[test]
    fn overlapping_matches_all_reported() {
        let ast = parse("aa").unwrap();
        assert_eq!(scan_report_offsets(&ast, b"aaaa"), vec![1, 2, 3]);
    }

    #[test]
    fn anchored_only_from_zero() {
        let ast = parse("ab").unwrap();
        assert_eq!(anchored_report_offsets(&ast, b"abab"), vec![1]);
        assert!(anchored_report_offsets(&ast, b"zab").is_empty());
    }

    #[test]
    fn paper_example() {
        let ast = parse("(a|b)e*cd+").unwrap();
        assert_eq!(scan_report_offsets(&ast, b"beecdd"), vec![4, 5]);
        assert_eq!(scan_report_offsets(&ast, b"acd"), vec![2]);
        assert!(scan_report_offsets(&ast, b"aed").is_empty());
    }

    #[test]
    fn nested_closure_terminates() {
        let ast = parse("(a+b?)+c").unwrap();
        assert_eq!(scan_report_offsets(&ast, b"aabac"), vec![4]);
    }
}
