//! The Glushkov (position automaton) construction.
//!
//! Every leaf of the AST becomes one STE; `first` positions become start
//! states, `last` positions become reporting states, and the `follow`
//! relation becomes the activation edges. The result is exactly the
//! homogeneous ANML-NFA of Figure 1(a) in the paper.

use super::ast::Ast;
use crate::error::{Error, Result};
use crate::nfa::{Nfa, NfaBuilder, StartKind, SteId};
use crate::symbol::SymbolClass;

/// Options controlling [`compile_ast`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileOptions {
    /// When `false` (default) the pattern scans unanchored: its first
    /// positions are `all-input` start states and a match may begin at
    /// any offset. When `true` the first positions are `start-of-data`
    /// states, anchoring the match to offset zero.
    pub anchored: bool,
    /// Report code attached to the pattern's accepting STEs.
    pub report_code: u32,
}

/// Compiles a parsed [`Ast`] into a homogeneous NFA.
///
/// # Errors
///
/// Returns [`Error::InvalidAutomaton`] when the expression is nullable
/// (accepts the empty string): a homogeneous NFA signals matches through
/// reporting STEs, which necessarily consume at least one symbol.
pub fn compile_ast(ast: &Ast, options: CompileOptions) -> Result<Nfa> {
    if ast.is_nullable() {
        return Err(Error::InvalidAutomaton(
            "pattern accepts the empty string; a homogeneous NFA cannot report it".into(),
        ));
    }

    let mut classes = Vec::with_capacity(ast.num_positions());
    collect_positions(ast, &mut classes);

    let mut follow: Vec<Vec<u32>> = vec![Vec::new(); classes.len()];
    let info = analyze(ast, &mut NextPosition(0), &mut follow);

    let mut builder = NfaBuilder::with_name("regex");
    let ids: Vec<SteId> = classes.into_iter().map(|c| builder.add_ste(c)).collect();
    let start_kind = if options.anchored {
        StartKind::StartOfData
    } else {
        StartKind::AllInput
    };
    for &p in &info.first {
        builder.set_start(ids[p as usize], start_kind);
    }
    for &p in &info.last {
        builder.set_report(ids[p as usize], options.report_code);
    }
    for (from, tos) in follow.iter().enumerate() {
        for &to in tos {
            builder.add_edge(ids[from], ids[to as usize]);
        }
    }
    builder.build()
}

fn collect_positions(ast: &Ast, out: &mut Vec<SymbolClass>) {
    match ast {
        Ast::Empty => {}
        Ast::Class(class) => out.push(*class),
        Ast::Concat(children) | Ast::Alternate(children) => {
            children.iter().for_each(|c| collect_positions(c, out));
        }
        Ast::Star(inner) | Ast::Plus(inner) | Ast::Optional(inner) => {
            collect_positions(inner, out);
        }
    }
}

struct NextPosition(u32);

#[derive(Clone, Default)]
struct NodeInfo {
    nullable: bool,
    first: Vec<u32>,
    last: Vec<u32>,
}

fn analyze(ast: &Ast, next: &mut NextPosition, follow: &mut [Vec<u32>]) -> NodeInfo {
    match ast {
        Ast::Empty => NodeInfo {
            nullable: true,
            ..NodeInfo::default()
        },
        Ast::Class(_) => {
            let p = next.0;
            next.0 += 1;
            NodeInfo {
                nullable: false,
                first: vec![p],
                last: vec![p],
            }
        }
        Ast::Concat(children) => {
            let mut acc = NodeInfo {
                nullable: true,
                ..NodeInfo::default()
            };
            for child in children {
                let info = analyze(child, next, follow);
                for &l in &acc.last {
                    follow[l as usize].extend(info.first.iter().copied());
                }
                if acc.nullable {
                    acc.first.extend(info.first.iter().copied());
                }
                if info.nullable {
                    acc.last.extend(info.last.iter().copied());
                } else {
                    acc.last = info.last.clone();
                }
                acc.nullable &= info.nullable;
            }
            acc
        }
        Ast::Alternate(children) => {
            let mut acc = NodeInfo::default();
            for child in children {
                let info = analyze(child, next, follow);
                acc.nullable |= info.nullable;
                acc.first.extend(info.first);
                acc.last.extend(info.last);
            }
            acc
        }
        Ast::Star(inner) | Ast::Plus(inner) => {
            let info = analyze(inner, next, follow);
            for &l in &info.last {
                follow[l as usize].extend(info.first.iter().copied());
            }
            NodeInfo {
                nullable: matches!(ast, Ast::Star(_)) || info.nullable,
                first: info.first,
                last: info.last,
            }
        }
        Ast::Optional(inner) => {
            let info = analyze(inner, next, follow);
            NodeInfo {
                nullable: true,
                first: info.first,
                last: info.last,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn compile(pattern: &str) -> Nfa {
        compile_ast(&parse(pattern).unwrap(), CompileOptions::default()).unwrap()
    }

    #[test]
    fn paper_example_has_five_stes() {
        // Figure 1(a): (a|b)e*cd+ uses STEs {a,b}, e, c, d in ANML form —
        // as a position automaton: a, b, e, c, d.
        let nfa = compile("(a|b)e*cd+");
        assert_eq!(nfa.len(), 5);
        assert_eq!(nfa.start_states().count(), 2);
        assert_eq!(nfa.reporting_states().count(), 1);
        // d+ has a self loop.
        let d = SteId(4);
        assert!(nfa.successors(d).contains(&d));
    }

    #[test]
    fn star_skips_and_loops() {
        let nfa = compile("ae*c");
        // a -> e, a -> c (skip), e -> e, e -> c
        let a = SteId(0);
        let e = SteId(1);
        let c = SteId(2);
        assert_eq!(nfa.successors(a), &[e, c]);
        assert_eq!(nfa.successors(e), &[e, c]);
        assert!(nfa.successors(c).is_empty());
    }

    #[test]
    fn nullable_pattern_is_rejected() {
        let err = compile_ast(&parse("a*").unwrap(), CompileOptions::default());
        assert!(matches!(err, Err(Error::InvalidAutomaton(_))));
    }

    #[test]
    fn anchored_uses_start_of_data() {
        let nfa = compile_ast(
            &parse("ab").unwrap(),
            CompileOptions {
                anchored: true,
                report_code: 9,
            },
        )
        .unwrap();
        assert_eq!(nfa.ste(SteId(0)).start, StartKind::StartOfData);
        assert_eq!(nfa.ste(SteId(1)).report, Some(9));
    }

    #[test]
    fn alternation_reports_both_branches() {
        let nfa = compile("ab|cd");
        assert_eq!(nfa.reporting_states().count(), 2);
        assert_eq!(nfa.start_states().count(), 2);
    }

    #[test]
    fn optional_middle_connects_around() {
        let nfa = compile("ab?c");
        let a = SteId(0);
        let b = SteId(1);
        let c = SteId(2);
        assert_eq!(nfa.successors(a), &[b, c]);
        assert_eq!(nfa.successors(b), &[c]);
    }

    #[test]
    fn nullable_concat_chain_first_set() {
        // first(a?b) = {a, b}
        let nfa = compile("a?b");
        assert_eq!(nfa.start_states().count(), 2);
    }

    #[test]
    fn plus_of_group_loops_to_group_start() {
        let nfa = compile("(ab)+");
        let a = SteId(0);
        let b = SteId(1);
        assert_eq!(nfa.successors(a), &[b]);
        assert_eq!(nfa.successors(b), &[a]);
        assert!(nfa.ste(b).is_reporting());
    }
}
