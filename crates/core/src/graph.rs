//! Graph analysis over the activation structure of an [`Nfa`]:
//! connected components, BFS orderings, and degree statistics.
//!
//! The mapper relies on two facts the paper exploits (§III.C): real NFAs
//! decompose into many small *connected components* (CCs) with no edges
//! between them, and a breadth-first ordering of each CC places most
//! transitions near the diagonal of the crossbar.
//!
//! Components are also the unit of plan caching and hot swap: with no
//! edges between them they compile, hash, and execute independently
//! (see [`crate::compile`]).
//!
//! # Examples
//!
//! ```
//! use cama_core::{graph, regex};
//!
//! // Two patterns share no states, so they form two components.
//! let nfa = regex::compile_set(&["ab+c", "xy+z"])?;
//! let components = graph::connected_components(&nfa);
//! assert_eq!(components.len(), 2);
//! // The inverse view: each state's component id.
//! let (ids, count) = graph::component_ids(&nfa);
//! assert_eq!(count, 2);
//! assert_eq!(ids.len(), nfa.len());
//! # Ok::<(), cama_core::Error>(())
//! ```

use crate::nfa::{Nfa, SteId};
use std::collections::VecDeque;

/// One connected component of an automaton (undirected connectivity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectedComponent {
    /// Member states in BFS order from the component's start states
    /// (falling back to the lowest id if the component has none).
    pub states: Vec<SteId>,
    /// Number of internal edges.
    pub num_edges: usize,
}

impl ConnectedComponent {
    /// Number of member states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` for a (degenerate) empty component.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Decomposes `nfa` into connected components.
///
/// Components are returned sorted by decreasing size, matching the
/// first-fit-decreasing packing order used by the greedy mapper.
///
/// # Examples
///
/// ```
/// use cama_core::{NfaBuilder, StartKind, SymbolClass, graph};
///
/// let mut b = NfaBuilder::new();
/// let x = b.add_ste(SymbolClass::singleton(b'x'));
/// let y = b.add_ste(SymbolClass::singleton(b'y'));
/// let z = b.add_ste(SymbolClass::singleton(b'z'));
/// b.set_start(x, StartKind::AllInput);
/// b.set_start(z, StartKind::AllInput);
/// b.add_edge(x, y);
/// let nfa = b.build()?;
/// let ccs = graph::connected_components(&nfa);
/// assert_eq!(ccs.len(), 2);
/// assert_eq!(ccs[0].len(), 2);
/// # Ok::<(), cama_core::Error>(())
/// ```
pub fn connected_components(nfa: &Nfa) -> Vec<ConnectedComponent> {
    let n = nfa.len();
    let preds = nfa.predecessors();
    let mut component = vec![usize::MAX; n];
    let mut count = 0;

    for seed in 0..n {
        if component[seed] != usize::MAX {
            continue;
        }
        let id = count;
        count += 1;
        let mut stack = vec![seed];
        component[seed] = id;
        while let Some(v) = stack.pop() {
            for &next in nfa.successors(SteId(v as u32)) {
                if component[next.index()] == usize::MAX {
                    component[next.index()] = id;
                    stack.push(next.index());
                }
            }
            for &prev in &preds[v] {
                if component[prev.index()] == usize::MAX {
                    component[prev.index()] = id;
                    stack.push(prev.index());
                }
            }
        }
    }

    let mut members: Vec<Vec<SteId>> = vec![Vec::new(); count];
    for (i, &c) in component.iter().enumerate() {
        members[c].push(SteId(i as u32));
    }

    // Scratch shared across components: per-component allocation would
    // make this quadratic on benchmarks with thousands of components.
    let mut scratch = BfsScratch::new(nfa.len());
    let mut ccs: Vec<ConnectedComponent> = members
        .into_iter()
        .map(|states| {
            let ordered = bfs_order_with(nfa, &preds, &states, &mut scratch);
            let num_edges = states
                .iter()
                .map(|&s| nfa.successors(s).len())
                .sum::<usize>();
            ConnectedComponent {
                states: ordered,
                num_edges,
            }
        })
        .collect();
    ccs.sort_by(|a, b| b.len().cmp(&a.len()).then(a.states.cmp(&b.states)));
    ccs
}

/// The per-state component index for `nfa`, plus the component count.
///
/// Components are numbered in [`connected_components`] order (largest
/// first), so an assignment derived from these ids agrees with the
/// first-fit-decreasing packing order of the mapper and with the
/// component-balanced shard strategy of
/// [`ShardedAutomaton`](crate::compiled::ShardedAutomaton).
///
/// # Examples
///
/// ```
/// use cama_core::{NfaBuilder, StartKind, SymbolClass, graph};
///
/// let mut b = NfaBuilder::new();
/// let x = b.add_ste(SymbolClass::singleton(b'x'));
/// let y = b.add_ste(SymbolClass::singleton(b'y'));
/// let z = b.add_ste(SymbolClass::singleton(b'z'));
/// b.set_start(x, StartKind::AllInput);
/// b.set_start(z, StartKind::AllInput);
/// b.add_edge(x, y);
/// let nfa = b.build()?;
/// let (ids, count) = graph::component_ids(&nfa);
/// assert_eq!(count, 2);
/// assert_eq!(ids[x.index()], ids[y.index()]);
/// assert_ne!(ids[x.index()], ids[z.index()]);
/// # Ok::<(), cama_core::Error>(())
/// ```
pub fn component_ids(nfa: &Nfa) -> (Vec<u32>, usize) {
    let ccs = connected_components(nfa);
    let mut ids = vec![0u32; nfa.len()];
    for (c, cc) in ccs.iter().enumerate() {
        for &s in &cc.states {
            ids[s.index()] = c as u32;
        }
    }
    (ids, ccs.len())
}

/// Orders the given states breadth-first, seeding the queue with the
/// component's start states (or its lowest id when it has none), exactly
/// the ordering eAP and CAMA use to diagonalize the transition matrix.
pub fn bfs_order(nfa: &Nfa, states: &[SteId]) -> Vec<SteId> {
    let preds = nfa.predecessors();
    bfs_order_with(nfa, &preds, states, &mut BfsScratch::new(nfa.len()))
}

struct BfsScratch {
    in_scope: Vec<bool>,
    seen: Vec<bool>,
}

impl BfsScratch {
    fn new(n: usize) -> Self {
        BfsScratch {
            in_scope: vec![false; n],
            seen: vec![false; n],
        }
    }
}

fn bfs_order_with(
    nfa: &Nfa,
    preds: &[Vec<SteId>],
    states: &[SteId],
    scratch: &mut BfsScratch,
) -> Vec<SteId> {
    for &s in states {
        scratch.in_scope[s.index()] = true;
    }
    let mut order = Vec::with_capacity(states.len());
    let mut queue = VecDeque::new();

    let mut seeds: Vec<SteId> = states
        .iter()
        .copied()
        .filter(|&s| nfa.ste(s).start.is_start())
        .collect();
    if seeds.is_empty() {
        seeds = states.iter().copied().take(1).collect();
    }
    seeds.sort_unstable();
    for s in seeds {
        if !scratch.seen[s.index()] {
            scratch.seen[s.index()] = true;
            queue.push_back(s);
        }
    }

    // Undirected BFS so back-edges stay near the diagonal too.
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let mut neighbors: Vec<SteId> = nfa
            .successors(v)
            .iter()
            .copied()
            .chain(preds[v.index()].iter().copied())
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        for next in neighbors {
            if scratch.in_scope[next.index()] && !scratch.seen[next.index()] {
                scratch.seen[next.index()] = true;
                queue.push_back(next);
            }
        }
        // Components can be disconnected in the directed sense only; any
        // leftover states are appended from fresh BFS seeds.
        if queue.is_empty() && order.len() < states.len() {
            if let Some(&s) = states.iter().find(|s| !scratch.seen[s.index()]) {
                scratch.seen[s.index()] = true;
                queue.push_back(s);
            }
        }
    }
    // Reset only the touched indices for the next component.
    for &s in states {
        scratch.in_scope[s.index()] = false;
        scratch.seen[s.index()] = false;
    }
    order
}

/// Degree and connectivity statistics used by the mapping reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of connected components.
    pub num_components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Maximum out-degree over all states.
    pub max_out_degree: usize,
    /// Maximum in-degree over all states.
    pub max_in_degree: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Fraction of edges `(u, v)` with `|bfs(u) - bfs(v)| <= 43` under the
    /// per-component BFS ordering — the paper's diagonality argument for
    /// the reduced crossbar.
    pub diagonal_fraction: f64,
}

/// Computes [`GraphStats`] for an automaton.
pub fn stats(nfa: &Nfa) -> GraphStats {
    let ccs = connected_components(nfa);
    let preds = nfa.predecessors();
    let max_out = (0..nfa.len())
        .map(|i| nfa.successors(SteId(i as u32)).len())
        .max()
        .unwrap_or(0);
    let max_in = preds.iter().map(Vec::len).max().unwrap_or(0);
    let avg_out = if nfa.is_empty() {
        0.0
    } else {
        nfa.num_edges() as f64 / nfa.len() as f64
    };

    let mut position = vec![0usize; nfa.len()];
    for cc in &ccs {
        for (pos, &s) in cc.states.iter().enumerate() {
            position[s.index()] = pos;
        }
    }
    let mut near = 0usize;
    for (from, to) in nfa.edges() {
        let d = position[from.index()].abs_diff(position[to.index()]);
        if d <= 43 {
            near += 1;
        }
    }
    let diagonal_fraction = if nfa.num_edges() == 0 {
        1.0
    } else {
        near as f64 / nfa.num_edges() as f64
    };

    GraphStats {
        num_components: ccs.len(),
        largest_component: ccs.first().map_or(0, ConnectedComponent::len),
        max_out_degree: max_out,
        max_in_degree: max_in,
        avg_out_degree: avg_out,
        diagonal_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{NfaBuilder, StartKind};
    use crate::symbol::SymbolClass;

    fn two_chains() -> Nfa {
        let mut b = NfaBuilder::new();
        let ids: Vec<SteId> = (0..6)
            .map(|i| b.add_ste(SymbolClass::singleton(b'a' + i)))
            .collect();
        b.set_start(ids[0], StartKind::AllInput);
        b.set_start(ids[3], StartKind::AllInput);
        b.add_edge(ids[0], ids[1]);
        b.add_edge(ids[1], ids[2]);
        b.add_edge(ids[3], ids[4]);
        b.build().unwrap()
    }

    #[test]
    fn components_are_split_and_sorted() {
        let ccs = connected_components(&two_chains());
        assert_eq!(ccs.len(), 3);
        assert_eq!(ccs[0].len(), 3);
        assert_eq!(ccs[1].len(), 2);
        assert_eq!(ccs[2].len(), 1);
        assert_eq!(ccs[0].num_edges, 2);
    }

    #[test]
    fn bfs_order_starts_at_start_states() {
        let nfa = two_chains();
        let ccs = connected_components(&nfa);
        assert_eq!(ccs[0].states, vec![SteId(0), SteId(1), SteId(2)]);
    }

    #[test]
    fn bfs_order_covers_all_states() {
        let nfa = two_chains();
        for cc in connected_components(&nfa) {
            let mut sorted = cc.states.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), cc.states.len());
        }
    }

    #[test]
    fn component_ids_invert_connected_components() {
        let nfa = two_chains();
        let (ids, count) = component_ids(&nfa);
        assert_eq!(count, 3);
        let ccs = connected_components(&nfa);
        for (c, cc) in ccs.iter().enumerate() {
            for &s in &cc.states {
                assert_eq!(ids[s.index()], c as u32);
            }
        }
        let empty = NfaBuilder::new().build().unwrap();
        assert_eq!(component_ids(&empty), (Vec::new(), 0));
    }

    #[test]
    fn stats_on_chains() {
        let s = stats(&two_chains());
        assert_eq!(s.num_components, 3);
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.avg_out_degree - 0.5).abs() < 1e-12);
        assert_eq!(s.diagonal_fraction, 1.0);
    }

    #[test]
    fn cycle_is_one_component() {
        let mut b = NfaBuilder::new();
        let x = b.add_ste(SymbolClass::singleton(b'x'));
        let y = b.add_ste(SymbolClass::singleton(b'y'));
        b.set_start(x, StartKind::AllInput);
        b.add_edge(x, y);
        b.add_edge(y, x);
        let nfa = b.build().unwrap();
        let ccs = connected_components(&nfa);
        assert_eq!(ccs.len(), 1);
        assert_eq!(ccs[0].num_edges, 2);
    }

    #[test]
    fn empty_nfa_stats() {
        let nfa = NfaBuilder::new().build().unwrap();
        let s = stats(&nfa);
        assert_eq!(s.num_components, 0);
        assert_eq!(s.largest_component, 0);
        assert_eq!(s.diagonal_fraction, 1.0);
    }
}
