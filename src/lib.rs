//! # CAMA — CAM-enabled automata processing
//!
//! A reproduction of *CAMA: Energy and Memory Efficient Automata
//! Processing in Content-Addressable Memories* (HPCA 2022). This facade
//! crate re-exports the whole workspace:
//!
//! * [`core`] — homogeneous NFAs, regex compilation, ANML/MNRL
//!   I/O, stride and bit-width transforms;
//! * [`encoding`] — the paper's data-encoding schemes,
//!   selection algorithm, symbol clustering, and CAM compression;
//! * [`mem`] — 28 nm circuit models and functional CAM /
//!   crossbar arrays;
//! * [`sim`] — the cycle-accurate functional simulator, including the
//!   streaming-session layer and the multi-stream stream table;
//! * [`arch`] — full designs (CAMA-E/T, CA, Impala, eAP, AP),
//!   the mapping toolchain, and the timing/area/energy models;
//! * [`workloads`] — the 21-benchmark synthetic suite.
//!
//! # Quickstart
//!
//! ```
//! use cama::core::regex;
//! use cama::sim::Simulator;
//!
//! let nfa = regex::compile("(a|b)e*cd+")?;
//! let run = Simulator::new(&nfa).run(b"xbeecddy");
//! let offsets: Vec<usize> = run.reports.iter().map(|r| r.offset).collect();
//! assert_eq!(offsets, vec![5, 6]);
//! # Ok::<(), cama::core::Error>(())
//! ```

pub use cama_arch as arch;
pub use cama_core as core;
pub use cama_encoding as encoding;
pub use cama_mem as mem;
pub use cama_sim as sim;
pub use cama_workloads as workloads;
