//! The serving control plane end to end: admission, token-bucket rate
//! limiting with deferral, QoS-aware parking under a residency cap,
//! the per-tenant usage ledger, and the per-tenant energy rollup.
//!
//! ```console
//! $ cargo run --release --example serving_control
//! ```

use cama::arch::{evaluate_serving_by_tenant, DesignKind};
use cama::core::compiled::CompiledAutomaton;
use cama::core::regex;
use cama::encoding::EncodingPlan;
use cama::sim::control::{ControlConfig, ControlledBatch, FlowSpec, QosClass, RateLimit};
use cama::sim::StreamId;

fn main() -> Result<(), cama::core::Error> {
    // The same IDS-flavoured rule set as the batch_serving example.
    let nfa = regex::compile_set(&["evil", "worm[0-9]+", "GET /admin", "\\x00\\x00"])?;
    let plan = CompiledAutomaton::compile(&nfa);

    // Two tenants share the table: tenant 1 is a premium subscriber,
    // tenant 2 runs background scans on a tight byte budget. The table
    // holds at most 2 resident sessions and every flow gets 16 B/tick.
    let config = ControlConfig::new()
        .max_open(8)
        .max_resident(2)
        .flow_rate(RateLimit::new(32, 16))
        .tenant_rate(2, RateLimit::new(24, 8));
    let mut ctl = ControlledBatch::new(&plan, config);

    let flows: [(StreamId, FlowSpec, &[u8]); 4] = [
        (
            0,
            FlowSpec::new(1)
                .with_class(QosClass::Premium)
                .with_deadline(4),
            b"GET /admin HTTP/1.1",
        ),
        (1, FlowSpec::new(1), b"payload worm2024 detected"),
        (
            2,
            FlowSpec::new(2).with_class(QosClass::Background),
            b"eevilevil",
        ),
        (
            3,
            FlowSpec::new(2).with_class(QosClass::Background),
            b"nothing suspicious here",
        ),
    ];

    for (id, spec, _) in &flows {
        let admission = ctl.open(*id, *spec);
        println!("open flow {id} ({:?}): {admission:?}", spec.class);
    }

    // Feed everything at once: the budgets admit a prefix and defer the
    // rest — nothing is dropped, delivery is just spread over ticks.
    println!("\nfeeding (burst):");
    for (id, _, payload) in &flows {
        let verdict = ctl.feed(*id, payload);
        println!(
            "  flow {id}: {} B admitted, {} B deferred{}",
            verdict.admitted,
            verdict.deferred,
            if verdict.backpressure() {
                "  <- backpressure"
            } else {
                ""
            },
        );
    }
    println!("{ctl}");

    // Ticks refill the buckets and drain deferred bytes, premium
    // class and tight deadlines first.
    let mut tick = 0;
    while ctl.deferred_total() > 0 {
        let verdict = ctl.tick();
        tick += 1;
        println!(
            "tick {tick}: drained {} B, {} B still deferred",
            verdict.drained,
            ctl.deferred_total()
        );
    }

    println!("\nresults:");
    for (id, _, payload) in &flows {
        let result = ctl.close(*id);
        println!(
            "  flow {id} ({:>2} bytes): {} report(s) {:?}",
            payload.len(),
            result.reports.len(),
            result.report_offsets()
        );
    }

    // The ledger: every flow, byte, cycle, and report attributed to
    // exactly one tenant.
    println!("\nper-tenant usage:");
    for (tenant, usage) in ctl.usages() {
        println!(
            "  tenant {tenant}: {} flows, {} B admitted ({} B deferred along the way), \
             {} cycles, {} reports",
            usage.flows_closed,
            usage.bytes_admitted,
            usage.bytes_deferred,
            usage.cycles,
            usage.reports
        );
    }

    // The same traffic through the architecture model: per-tenant
    // energy slices that sum to the table-wide CAMA-E breakdown.
    let encoding = EncodingPlan::for_nfa(&nfa);
    let tagged: Vec<(u32, &[u8])> = flows
        .iter()
        .map(|&(_, spec, payload)| (spec.tenant, payload))
        .collect();
    let report = evaluate_serving_by_tenant(DesignKind::CamaE, &nfa, &tagged, Some(&encoding));
    println!("\nCAMA-E per-tenant energy:");
    for (tenant, slice) in &report.tenants {
        println!(
            "  tenant {tenant}: {:.3} nJ over {} cycles, {} visited words, {} reports",
            slice.energy.total().to_nanojoules(),
            slice.energy.cycles,
            slice.active_words,
            slice.reports
        );
    }
    let summed = report.summed_energy().total();
    let total = report.serving.design_report.energy.total();
    println!(
        "  sum {:.3} nJ == table-wide {:.3} nJ",
        summed.to_nanojoules(),
        total.to_nanojoules()
    );
    assert!((summed.value() - total.value()).abs() <= 1e-9 * total.value().abs().max(1.0));
    Ok(())
}
