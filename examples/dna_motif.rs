//! Bioinformatics motif search with mismatch tolerance: a Hamming-
//! distance automaton (the ANMLZoo "Hamming" shape) scans a synthetic
//! DNA sequence for a motif allowing up to `d` substitutions — the kind
//! of workload Roy & Aluru ran on the Micron AP.
//!
//! ```sh
//! cargo run --release --example dna_motif
//! ```

use cama::core::{Nfa, NfaBuilder, StartKind, SteId, SymbolClass};
use cama::encoding::EncodingPlan;
use cama::sim::Simulator;

/// Builds a Hamming(d) automaton for `motif`.
///
/// Row `r` means "r mismatches spent". Each grid cell has two STEs: a
/// *match* state accepting the motif base and (for rows ≥ 1) a
/// *mismatch* state accepting any other base; stepping diagonally into a
/// mismatch state spends one unit of budget.
fn hamming_automaton(motif: &[u8], distance: usize) -> Nfa {
    let mut builder = NfaBuilder::with_name("hamming-motif");
    let rows = distance + 1;
    let length = motif.len();
    let match_class = |j: usize| SymbolClass::singleton(motif[j]);
    let mismatch_class = |j: usize| {
        let mut class: SymbolClass = b"ACGT".iter().copied().collect();
        class.remove(motif[j]);
        class
    };

    let mut matches = vec![vec![SteId(0); length]; rows];
    let mut mismatches = vec![vec![None::<SteId>; length]; rows];
    for r in 0..rows {
        for j in 0..length {
            matches[r][j] = builder.add_ste(match_class(j));
            if r >= 1 {
                mismatches[r][j] = Some(builder.add_ste(mismatch_class(j)));
            }
        }
    }
    builder.set_start(matches[0][0], StartKind::AllInput);
    if let Some(x) = mismatches[1][0] {
        builder.set_start(x, StartKind::AllInput);
    }
    for r in 0..rows {
        for j in 0..length {
            let here: Vec<SteId> = [Some(matches[r][j]), mismatches[r][j]]
                .into_iter()
                .flatten()
                .collect();
            for &state in &here {
                if j + 1 < length {
                    // Exact continuation.
                    builder.add_edge(state, matches[r][j + 1]);
                    // Spend one mismatch.
                    if r + 1 < rows {
                        if let Some(x) = mismatches[r + 1][j + 1] {
                            builder.add_edge(state, x);
                        }
                    }
                } else {
                    builder.set_report(state, r as u32);
                }
            }
        }
    }
    builder.build().expect("hamming automaton is valid")
}

fn synthetic_genome(len: usize, motif: &[u8]) -> Vec<u8> {
    let bases = b"ACGT";
    let mut seed = 0x2545F4914F6CDD1Du64;
    let mut genome: Vec<u8> = (0..len)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            bases[(seed % 4) as usize]
        })
        .collect();
    // Plant the motif exactly, and once with a substitution.
    let exact_at = len / 3;
    genome[exact_at..exact_at + motif.len()].copy_from_slice(motif);
    let fuzzy_at = 2 * len / 3;
    genome[fuzzy_at..fuzzy_at + motif.len()].copy_from_slice(motif);
    let mid = fuzzy_at + motif.len() / 2;
    genome[mid] = if genome[mid] == b'A' { b'C' } else { b'A' };
    genome
}

fn main() {
    let motif = b"GATTACACAT";
    let distance = 1;
    let nfa = hamming_automaton(motif, distance);
    println!(
        "motif {:?} with <= {distance} substitutions: {} STEs / {} edges",
        String::from_utf8_lossy(motif),
        nfa.len(),
        nfa.num_edges()
    );

    let genome = synthetic_genome(64 * 1024, motif);
    let result = Simulator::new(&nfa).run(&genome);
    println!(
        "scanned {} bases, {} motif hits:",
        genome.len(),
        result.reports.len()
    );
    for report in result.reports.iter().take(10) {
        let start = report.offset + 1 - motif.len();
        println!(
            "  offset {:>6}: {:?} ({} mismatches)",
            start,
            String::from_utf8_lossy(&genome[start..=report.offset]),
            report.code
        );
    }

    // The 4-symbol alphabet gets a very short code.
    let plan = EncodingPlan::for_nfa(&nfa);
    println!(
        "\nencoding: {} ({} bits instead of 256 one-hot rows), {} CAM entries",
        plan.scheme(),
        plan.code_len(),
        plan.total_entries()
    );
    plan.verify_exact(&nfa).expect("exact encoding");
}
