//! Streaming ingestion: incremental `feed()` sessions, an interleaved
//! stream table, and a length-prefixed wire demuxed by `FrameDecoder`.
//!
//! ```console
//! $ cargo run --release --example streaming_ingest
//! ```

use cama::core::compiled::CompiledAutomaton;
use cama::core::regex;
use cama::sim::frame::{encode_close, encode_frame};
use cama::sim::{AutomataEngine, BatchSimulator, FrameDecoder, Session, Simulator, StreamId};

fn main() -> Result<(), cama::core::Error> {
    // An IDS-flavoured rule set, compiled once.
    let patterns = ["evil", "worm[0-9]+", "GET /admin"];
    let nfa = regex::compile_set(&patterns)?;

    // --- 1. A single resumable session: packets arrive one at a time. ---
    let sim = Simulator::new(&nfa);
    let mut session = sim.start();
    for packet in [&b"GET /ad"[..], b"min", b" ... ev", b"il"] {
        session.feed(packet);
    }
    // §VI.B buffer model, straight off the session's accumulated state.
    let buffers = session.buffer_stats();
    let result = session.finish();
    println!(
        "single flow: {} reports at offsets {:?} ({} input interrupts, {} residual reports)",
        result.reports.len(),
        result.report_offsets(),
        buffers.input_interrupts,
        buffers.residual_reports,
    );

    // --- 2. A framed wire: fragments of many flows in one buffer. ---
    let flows: [&[u8]; 3] = [
        b"GET /admin HTTP/1.1",
        b"nothing suspicious here",
        b"payload worm2024 detected",
    ];
    let mut wire = Vec::new();
    // Interleave 5-byte frames round-robin, then close every flow.
    let longest = flows.iter().map(|f| f.len()).max().unwrap();
    for pos in (0..longest).step_by(5) {
        for (id, flow) in flows.iter().enumerate() {
            if pos < flow.len() {
                let end = (pos + 5).min(flow.len());
                encode_frame(id as StreamId, &flow[pos..end], &mut wire);
            }
        }
    }
    for id in 0..flows.len() {
        encode_close(id as StreamId, &mut wire);
    }
    println!(
        "\nwire: {} bytes carrying {} interleaved flows",
        wire.len(),
        flows.len()
    );

    // --- 3. Demux the wire through the stream table. ---
    let plan = CompiledAutomaton::compile(&nfa);
    // Cap resident sessions at 2: the third flow is parked (sparse
    // snapshot) whenever both sessions are busy, and resumes
    // transparently. A 64 KiB payload guard rejects corrupt headers.
    let mut batch = BatchSimulator::new(&plan).max_resident(2);
    let mut decoder = FrameDecoder::with_max_payload(64 * 1024);
    // The wire itself may be split anywhere — even mid-header.
    let (first, second) = wire.split_at(wire.len() / 2);
    for piece in [first, second] {
        let mut closed = Vec::new();
        batch
            .ingest(&mut decoder, piece, &mut closed)
            .expect("well-formed wire");
        for (stream, result) in closed {
            println!(
                "  flow {stream} closed: {} report(s) {:?}",
                result.reports.len(),
                result.report_offsets()
            );
        }
    }
    assert!(decoder.is_idle() && batch.open_count() == 0);

    Ok(())
}
