//! Quickstart: compile a regex to a homogeneous NFA, run it on an input
//! stream, encode it for the CAM, and print what the hardware would cost.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cama::arch::designs::DesignKind;
use cama::arch::report::evaluate;
use cama::core::regex;
use cama::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Figure 1).
    let pattern = "(a|b)e*cd+";
    let nfa = regex::compile(pattern)?;
    println!("pattern       : {pattern}");
    println!("STEs          : {}", nfa.len());
    println!("edges         : {}", nfa.num_edges());

    // Functional simulation.
    let input = b"xxbeecddyyacdzz";
    let result = Simulator::new(&nfa).run(input);
    println!("input         : {:?}", String::from_utf8_lossy(input));
    for report in &result.reports {
        println!(
            "  report at offset {:>2} (…{:?}) from {}",
            report.offset,
            String::from_utf8_lossy(&input[report.offset.saturating_sub(3)..=report.offset]),
            report.ste,
        );
    }

    // The encoding the CAMA toolchain selects.
    let plan = cama::encoding::EncodingPlan::for_nfa(&nfa);
    println!("scheme        : {}", plan.scheme());
    println!("CAM entries   : {}", plan.total_entries());
    plan.verify_exact(&nfa).expect("encoded matching is exact");

    // What would running this cost on each architecture?
    println!("\ndesign          energy/byte     area       throughput");
    for design in DesignKind::HEADLINE {
        let report = evaluate(design, &nfa, input);
        println!(
            "{:<15} {:>8.4} nJ   {:>7.4} mm2   {:>6.2} Gbps",
            design.name(),
            report.energy_per_byte_nj(),
            report.area.total().to_mm2(),
            report.throughput_gbps(),
        );
    }
    Ok(())
}
