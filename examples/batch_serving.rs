//! Batched multi-stream serving: compile one plan, run many inputs.
//!
//! ```console
//! $ cargo run --release --example batch_serving
//! ```

use cama::arch::{evaluate_serving, DesignKind};
use cama::core::compiled::CompiledAutomaton;
use cama::core::regex;
use cama::encoding::EncodingPlan;
use cama::sim::BatchSimulator;

fn main() -> Result<(), cama::core::Error> {
    // A small IDS-flavoured rule set, compiled once.
    let nfa = regex::compile_set(&["evil", "worm[0-9]+", "GET /admin", "\\x00\\x00"])?;
    let plan = CompiledAutomaton::compile(&nfa);
    println!(
        "compiled plan: {} states, {} edges",
        plan.len(),
        plan.num_edges()
    );

    // Independent "flows", including an empty one.
    let streams: Vec<&[u8]> = vec![
        b"GET /admin HTTP/1.1",
        b"nothing suspicious here",
        b"payload worm2024 detected",
        b"",
        b"eevilevil",
    ];

    let batch = BatchSimulator::new(&plan);

    // Lazy sequential iteration: one scratch state for the whole batch.
    println!("\nper-stream reports (sequential):");
    for (i, result) in batch.results(streams.iter().copied()).enumerate() {
        let offsets = result.report_offsets();
        println!(
            "  stream {i:>2} ({:>3} bytes): {} report(s) {:?}",
            streams[i].len(),
            result.reports.len(),
            offsets
        );
    }

    // Threaded fan-out returns identical results in stream order.
    let parallel = batch.run_parallel(&streams, 0);
    let sequential = batch.run_all(streams.iter().copied());
    assert_eq!(parallel, sequential);
    println!("\nrun_parallel(0 = all cores) matches sequential: ok");

    // Architecture rollup of the whole batch on CAMA-E.
    let encoding = EncodingPlan::for_nfa(&nfa);
    let serving = evaluate_serving(DesignKind::CamaE, &nfa, &streams, Some(&encoding));
    println!(
        "\nCAMA-E serving rollup: {} streams, {} bytes, {} reports, {:.3} nJ/byte",
        serving.reports_per_stream.len(),
        serving.total_bytes,
        serving.total_reports(),
        serving.energy_per_byte_nj()
    );
    Ok(())
}
