//! Live ruleset hot-swap end to end: compile a ruleset through the
//! structure-hashed plan cache, serve streams against it, swap to an
//! updated ruleset *mid-stream* without draining a single flow, and
//! keep per-epoch energy books with [`SwapEpochEnergy`].
//!
//! ```console
//! $ cargo run --release --example hot_swap
//! ```

use cama::arch::{evaluate, DesignKind, SwapEpochEnergy};
use cama::core::compile::{compile_ruleset, PlanCache, PlanRemap};
use cama::core::regex;
use cama::sim::{BatchSimulator, StreamId};

fn main() -> Result<(), cama::core::Error> {
    // Version 1 of an IDS-flavoured ruleset. Report code = position in
    // the set, so updates that keep report codes stable are appends or
    // in-place replacements — exactly the cache-friendly shapes.
    let v1 = regex::compile_set(&["evil", "worm[0-9]+", "GET /admin"])?;
    // Version 2 replaces rule 0 and appends a brand-new rule 3.
    let v2 = regex::compile_set(&["evil[0-9]", "worm[0-9]+", "GET /admin", "\\x00\\x00"])?;

    // Compile v1 cold through the plan cache: every component misses.
    let mut cache = PlanCache::default();
    let (plan_v1, report) = compile_ruleset(&v1, 0, &mut cache);
    println!(
        "v1 compile: {} components, {} cache hits, {} misses ({} workers)",
        report.components, report.cache_hits, report.cache_misses, report.workers
    );

    // Serve two long-lived streams against v1, stopping mid-payload.
    let mut table = BatchSimulator::new(&plan_v1);
    table.feed(0 as StreamId, b"GET /adm");
    table.feed(1 as StreamId, b"see worm20");

    // The update arrives. Recompiling v2 only pays for the changed
    // rule and the new rule — the two unchanged components hit.
    let (plan_v2, report) = compile_ruleset(&v2, 0, &mut cache);
    println!(
        "v2 compile: {} components, {} cache hits, {} misses",
        report.components, report.cache_hits, report.cache_misses
    );
    let stats = cache.cache_stats();
    println!(
        "cache: {} hits / {} misses / {} evictions / {} entries",
        stats.hits, stats.misses, stats.evictions, stats.entries
    );

    // Swap live. The remap matches components by structure hash and
    // translates every surviving state id; states of the replaced
    // rule are dropped (their flows lose only that rule's progress).
    let remap = PlanRemap::between(&v1, &v2);
    let swap = table.swap_plan(&plan_v2, &remap);
    for (stream, verdict) in &swap.verdicts {
        println!("stream {stream}: {verdict:?}");
    }

    // Both streams finish their payloads on the new plan; flow 0's
    // in-flight "GET /admin" progress survived the swap.
    table.feed(0 as StreamId, b"in HTTP/1.1");
    table.feed(1 as StreamId, b"24 and evil7 here");
    for stream in [0 as StreamId, 1 as StreamId] {
        let result = table.close(stream);
        for report in &result.reports {
            println!(
                "stream {stream}: rule {} matched at byte {}",
                report.code, report.offset
            );
        }
    }

    // Per-epoch energy accounting: one breakdown per plan version,
    // summed without losing a joule or a cycle.
    let mut epochs = SwapEpochEnergy::new();
    epochs.record("v1", evaluate(DesignKind::CamaE, &v1, b"GET /adm").energy);
    epochs.record(
        "v2",
        evaluate(DesignKind::CamaE, &v2, b"in HTTP/1.1").energy,
    );
    let total = epochs.total();
    println!(
        "energy across {} swap epochs: {} cycles, {:.1} pJ",
        epochs.len(),
        total.cycles,
        total.total().value()
    );
    Ok(())
}
