//! A Snort-like network intrusion detection scenario: a rule set of
//! signatures is compiled into one automaton, a synthetic packet trace
//! is scanned, and the five architectures are compared on the workload —
//! the use case that motivates the paper's introduction.
//!
//! ```sh
//! cargo run --release --example network_ids
//! ```

use cama::arch::designs::DesignKind;
use cama::arch::report::evaluate_with_plan;
use cama::core::regex;
use cama::encoding::EncodingPlan;
use cama::sim::Simulator;

const RULES: &[(&str, &str)] = &[
    ("exploit-cgi", "GET /cgi-bin/[a-z]+\\.(pl|sh)"),
    ("sql-injection", "(union|UNION) +(select|SELECT)"),
    ("shellcode-nop", "\\x90{8,16}"),
    ("dir-traversal", "\\.\\./\\.\\./[a-z]+"),
    ("irc-botnet", "(NICK|JOIN) #[a-z0-9]{4,12}"),
    ("suspicious-ua", "User-Agent: (sqlmap|nikto|nmap)"),
    ("base64-blob", "[A-Za-z0-9+/]{32,40}="),
    ("telnet-root", "login: root"),
];

fn synthetic_trace(len: usize) -> Vec<u8> {
    // Mostly benign HTTP-ish traffic with a few planted attacks.
    let benign = b"GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: text/html\r\n\r\n";
    let attacks: [&[u8]; 4] = [
        b"GET /cgi-bin/test.pl HTTP/1.0\r\n",
        b"id=1 union select password from users--",
        b"../../etc/passwd",
        b"login: root\r\n",
    ];
    let mut trace = Vec::with_capacity(len);
    let mut i = 0;
    while trace.len() < len {
        trace.extend_from_slice(benign);
        if i % 7 == 3 {
            trace.extend_from_slice(attacks[i % attacks.len()]);
        }
        i += 1;
    }
    trace.truncate(len);
    trace
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let patterns: Vec<&str> = RULES.iter().map(|&(_, p)| p).collect();
    let nfa = regex::compile_set(&patterns)?;
    println!(
        "rule set: {} rules -> {} STEs, {} edges",
        RULES.len(),
        nfa.len(),
        nfa.num_edges()
    );

    let trace = synthetic_trace(32 * 1024);
    let result = Simulator::new(&nfa).run(&trace);
    println!(
        "scanned {} bytes, {} alerts:",
        trace.len(),
        result.reports.len()
    );
    let mut per_rule = vec![0usize; RULES.len()];
    for report in &result.reports {
        per_rule[report.code as usize] += 1;
    }
    for ((name, _), count) in RULES.iter().zip(&per_rule) {
        if *count > 0 {
            println!("  {name:<16} {count:>5} hits");
        }
    }

    // One buffer entry per report record, straight off the run.
    let buffers = result.buffer_stats(trace.len());
    println!(
        "output buffer: {} interrupts vs {} input refills (hidden: {})",
        buffers.output_interrupts,
        buffers.input_interrupts,
        buffers.output_hidden_behind_input()
    );

    let plan = EncodingPlan::for_nfa(&nfa);
    println!(
        "\nCAMA encoding: {} -> {} entries for {} states",
        plan.scheme(),
        plan.total_entries(),
        nfa.len()
    );

    println!("\ndesign          energy/byte       power      density");
    for design in DesignKind::HEADLINE {
        let plan_ref = design.is_cama().then_some(&plan);
        let report = evaluate_with_plan(design, &nfa, &trace, plan_ref);
        println!(
            "{:<15} {:>9.4} nJ  {:>8.4} W  {:>8.1} Gbps/mm2",
            design.name(),
            report.energy_per_byte_nj(),
            report.power_watts(),
            report.compute_density(),
        );
    }
    Ok(())
}
