//! Design-space exploration: how the encoding scheme choice trades code
//! length against CAM entries (the §V trade-off), shown on one workload
//! with every scheme forced in turn — the experiment behind Table II's
//! "one scheme does not fit all" argument.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use cama::core::stats::class_stats;
use cama::encoding::scheme::{
    multi_zeros_len, one_zero_prefix_geometry, two_zeros_prefix_geometry,
};
use cama::encoding::{EncodingPlan, Scheme};
use cama::workloads::Benchmark;

fn main() {
    let bench = Benchmark::Protomata;
    let nfa = bench.generate(0.1);
    let stats = class_stats(&nfa);
    println!(
        "{}: {} states, avg class {:.2} (NO {:.2}), alphabet {}",
        bench.name(),
        stats.num_states,
        stats.avg_class_size,
        stats.avg_class_size_no,
        stats.alphabet_size
    );

    let alphabet = 256;
    let candidates: Vec<(&str, Scheme)> = vec![
        ("One-Zero (bit vector)", Scheme::OneZero { len: alphabet }),
        (
            "Multi-Zeros",
            Scheme::MultiZeros {
                len: multi_zeros_len(alphabet),
            },
        ),
        (
            "Two-Zeros-Prefix",
            two_zeros_prefix_geometry(alphabet, stats.avg_class_size_no)
                .expect("feasible for this class profile"),
        ),
        ("One-Zero-Prefix", one_zero_prefix_geometry(alphabet)),
    ];

    println!("\nscheme                     len   entries   memory bits   vs one-hot");
    let one_hot_bits = alphabet * nfa.len();
    for (name, scheme) in candidates {
        let plan = EncodingPlan::with_scheme(&nfa, scheme, true);
        plan.verify_exact(&nfa).expect("every scheme stays exact");
        println!(
            "{:<25} {:>4}  {:>8}  {:>12}  {:>9.2}x",
            name,
            plan.code_len(),
            plan.total_entries(),
            plan.memory_bits(),
            one_hot_bits as f64 / plan.memory_bits() as f64,
        );
    }

    let selected = EncodingPlan::for_nfa(&nfa);
    println!(
        "\nselection algorithm picks: {} ({} entries, {}b, {} negated rows)",
        selected.scheme(),
        selected.total_entries(),
        selected.code_len(),
        selected.negated_states(),
    );
}
