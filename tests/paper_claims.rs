//! The paper's headline quantitative claims, checked in *shape* (who
//! wins, roughly by how much) on scaled-down workloads. Absolute numbers
//! differ — the substrate is a simulator on synthetic inputs — but the
//! orderings and rough factors must hold (see EXPERIMENTS.md).

use cama::arch::designs::DesignKind;
use cama::arch::report::{evaluate_strided, evaluate_with_plan, strided_weights, DesignReport};
use cama::arch::timing::timing_report;
use cama::core::stride::StridedNfa;
use cama::encoding::EncodingPlan;
use cama::mem::models::CircuitLibrary;
use cama::workloads::Benchmark;

const SCALE: f64 = 0.03;
const INPUT: usize = 4096;

fn reports_for(bench: Benchmark) -> Vec<DesignReport> {
    let nfa = bench.generate(SCALE);
    let input = bench.input(&nfa, INPUT, 21);
    let plan = EncodingPlan::for_nfa(&nfa);
    DesignKind::HEADLINE
        .iter()
        .map(|&d| evaluate_with_plan(d, &nfa, &input, d.is_cama().then_some(&plan)))
        .collect()
}

fn by_design(reports: &[DesignReport], design: DesignKind) -> &DesignReport {
    reports.iter().find(|r| r.design == design).unwrap()
}

#[test]
fn cama_e_has_the_lowest_energy_per_byte() {
    for bench in [Benchmark::Brill, Benchmark::Snort, Benchmark::Tcp] {
        let reports = reports_for(bench);
        let e = by_design(&reports, DesignKind::CamaE).energy_per_byte_nj();
        for report in &reports {
            if report.design != DesignKind::CamaE {
                assert!(
                    report.energy_per_byte_nj() > e,
                    "{bench}: {} not above CAMA-E",
                    report.design
                );
            }
        }
    }
}

#[test]
fn energy_factors_are_roughly_the_papers() {
    // Paper averages: CA 2.1x, Impala2 2.8x, eAP 2.04x, CAMA-T 2.04x
    // over CAMA-E. Allow a generous band.
    let mut factors = vec![Vec::new(); 4];
    for bench in [Benchmark::Brill, Benchmark::Dotstar06, Benchmark::PowerEn] {
        let reports = reports_for(bench);
        let e = by_design(&reports, DesignKind::CamaE).energy_per_byte_nj();
        factors[0].push(by_design(&reports, DesignKind::CacheAutomaton).energy_per_byte_nj() / e);
        factors[1].push(by_design(&reports, DesignKind::Impala2).energy_per_byte_nj() / e);
        factors[2].push(by_design(&reports, DesignKind::Eap).energy_per_byte_nj() / e);
        factors[3].push(by_design(&reports, DesignKind::CamaT).energy_per_byte_nj() / e);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ca, impala, eap, camat) = (
        mean(&factors[0]),
        mean(&factors[1]),
        mean(&factors[2]),
        mean(&factors[3]),
    );
    assert!((1.3..5.0).contains(&ca), "CA factor {ca}");
    assert!((1.5..6.0).contains(&impala), "Impala factor {impala}");
    assert!((1.2..5.0).contains(&eap), "eAP factor {eap}");
    assert!((1.2..5.0).contains(&camat), "CAMA-T factor {camat}");
    // Impala's doubled periphery must cost more than CA (the paper's
    // central observation about Impala).
    assert!(impala > ca, "Impala {impala} vs CA {ca}");
}

#[test]
fn cama_t_has_the_highest_compute_density() {
    for bench in [Benchmark::Brill, Benchmark::ClamAv, Benchmark::Hamming] {
        let reports = reports_for(bench);
        let t = by_design(&reports, DesignKind::CamaT).compute_density();
        for report in &reports {
            if report.design != DesignKind::CamaT {
                assert!(
                    t > report.compute_density(),
                    "{bench}: CAMA-T {t} not above {} ({})",
                    report.design,
                    report.compute_density()
                );
            }
        }
    }
}

#[test]
fn wide_mode_benchmarks_lose_density() {
    // RandomForest runs in the 32-bit mode; its CAMA density advantage
    // over CA must shrink versus an RCB-mode benchmark (Figure 11a's
    // outliers).
    let rcb = reports_for(Benchmark::Brill);
    let wide = reports_for(Benchmark::RandomForest);
    let advantage = |reports: &[DesignReport]| {
        by_design(reports, DesignKind::CamaT).compute_density()
            / by_design(reports, DesignKind::CacheAutomaton).compute_density()
    };
    assert!(advantage(&rcb) > advantage(&wide));
}

#[test]
fn area_ratios_match_figure_10s_shape() {
    let reports = reports_for(Benchmark::Snort);
    let cama = by_design(&reports, DesignKind::CamaE).area.total().value();
    let ca = by_design(&reports, DesignKind::CacheAutomaton)
        .area
        .total()
        .value();
    let impala = by_design(&reports, DesignKind::Impala2)
        .area
        .total()
        .value();
    let eap = by_design(&reports, DesignKind::Eap).area.total().value();
    // Paper (largest benchmark): CA 2.48x, Impala2 1.91x, eAP 1.78x.
    assert!((1.5..4.5).contains(&(ca / cama)), "CA/CAMA {}", ca / cama);
    assert!(
        (1.2..3.5).contains(&(impala / cama)),
        "Impala/CAMA {}",
        impala / cama
    );
    assert!(
        (1.2..3.5).contains(&(eap / cama)),
        "eAP/CAMA {}",
        eap / cama
    );
}

#[test]
fn frequencies_match_table_iv() {
    let lib = CircuitLibrary::tsmc28();
    let expected = [
        (DesignKind::CamaE, 1.34, 1.21),
        (DesignKind::CamaT, 2.38, 2.14),
        (DesignKind::Impala2, 2.26, 2.03),
        (DesignKind::Eap, 1.94, 1.75),
        (DesignKind::CacheAutomaton, 2.03, 1.82),
    ];
    for (design, max, operated) in expected {
        let t = timing_report(design, &lib);
        assert!(
            (t.max_frequency_ghz - max).abs() < 0.011,
            "{design} max {}",
            t.max_frequency_ghz
        );
        assert!(
            (t.operated_frequency_ghz - operated).abs() < 0.011,
            "{design} operated {}",
            t.operated_frequency_ghz
        );
    }
}

#[test]
fn four_stride_impala_burns_more_than_two_stride_cama() {
    // Figure 13: 4-stride Impala ≈ 3.77x over 2-stride CAMA-E and
    // ≈ 2.18x over 2-stride CAMA-T on average.
    let mut vs_e = Vec::new();
    let mut vs_t = Vec::new();
    for bench in [Benchmark::Brill, Benchmark::Hamming] {
        let nfa = bench.generate(SCALE);
        let input = bench.input(&nfa, INPUT, 23);
        let strided = StridedNfa::from_nfa(&nfa);
        let run = |design| {
            let weights = strided_weights(design, &strided);
            evaluate_strided(design, &strided, weights, &input).energy_per_byte_nj()
        };
        let e = run(DesignKind::Cama2E);
        let t = run(DesignKind::Cama2T);
        let impala = run(DesignKind::Impala4);
        vs_e.push(impala / e);
        vs_t.push(impala / t);
    }
    for r in &vs_e {
        assert!(*r > 1.5, "Impala4/CAMA2-E {r}");
    }
    for r in &vs_t {
        assert!(*r > 1.0, "Impala4/CAMA2-T {r}");
    }
}

#[test]
fn encoding_entry_overhead_is_small() {
    // Table II: the proposed encoding increases entries by ~13 % on
    // average over one-hot states. Check the aggregate stays modest.
    let mut total_states = 0usize;
    let mut total_entries = 0usize;
    for bench in [
        Benchmark::Brill,
        Benchmark::ClamAv,
        Benchmark::Tcp,
        Benchmark::Bro217,
        Benchmark::ExactMatch,
    ] {
        let nfa = bench.generate(0.05);
        let plan = EncodingPlan::for_nfa(&nfa);
        total_states += nfa.len();
        total_entries += plan.total_entries();
    }
    let overhead = total_entries as f64 / total_states as f64;
    assert!((1.0..1.35).contains(&overhead), "entry overhead {overhead}");
}
