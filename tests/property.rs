//! Randomized property tests over the core invariants of DESIGN.md §6:
//! regex/Glushkov correctness, engine agreement (compiled ≡ interpreted
//! ≡ reference, single-stream ≡ batched), encoding exactness, stride
//! equivalence, and crossbar-remap fidelity — all with randomly
//! generated structures.
//!
//! The harness is self-contained: cases are drawn from the workspace's
//! deterministic `StdRng` (this repo builds without registry access, so
//! there is no `proptest` dependency). Every case prints its seed in
//! the assertion message, so a failure is reproducible by construction.

use cama::core::bitset::BitSet;
use cama::core::bitwidth::{to_nibble_nfa, to_nibble_stream};
use cama::core::compile::{
    compile_hybrid_ruleset, compile_ruleset, dfa_enabled, DfaPolicy, PlanCache, PlanRemap,
};
use cama::core::compiled::{
    CompiledAutomaton, CompiledStridedAutomaton, DfaBudget, ShardedAutomaton,
};
use cama::core::graph;
use cama::core::regex::{self, reference};
use cama::core::stride::StridedNfa;
use cama::core::{Nfa, NfaBuilder, StartKind, SteId, SymbolClass};
use cama::encoding::{EncodingPlan, Scheme, StridedEncoding};
use cama::mem::{FullCrossbar, ReducedCrossbar, K_DIA};
use cama::sim::control::{
    ClassLruPolicy, ControlConfig, ControlledBatch, FlowSpec, LruPolicy, QosClass, QosPolicy,
    RateLimit, VictimPolicy,
};
use cama::sim::frame::{encode_close, encode_frame};
use cama::sim::{
    AutomataEngine, BatchSimulator, ByteSession, EncodedSession, EncodedSimulator,
    EncodedStridedSimulator, FlowSession, FrameDecoder, InterpSimulator, ParallelShardedPlan,
    ParallelShardedSession, RunResult, Session, ShardedSimulator, Simulator, StreamId, StreamPlan,
    StridedSimulator,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CASES: u64 = 64;

/// A small pattern grammar guaranteed parser-safe: a sequence of atoms
/// from a fixed pool, each optionally quantified.
fn random_pattern(rng: &mut StdRng) -> String {
    const ATOMS: [&str; 5] = ["[a-e]", "x", "[^a]", ".", "[b-d]"];
    const QUANTIFIERS: [&str; 3] = ["", "+", "?"];
    let units = rng.random_range(1..5usize);
    let mut pattern = String::new();
    for _ in 0..units {
        pattern.push_str(ATOMS[rng.random_range(0..ATOMS.len())]);
        pattern.push_str(QUANTIFIERS[rng.random_range(0..QUANTIFIERS.len())]);
    }
    pattern
}

fn random_input(rng: &mut StdRng) -> Vec<u8> {
    const SYMBOLS: [u8; 5] = [b'a', b'b', b'c', b'x', b'z'];
    let len = rng.random_range(0..24usize);
    (0..len)
        .map(|_| SYMBOLS[rng.random_range(0..SYMBOLS.len())])
        .collect()
}

/// A random homogeneous NFA: 2–12 states with random (possibly negated)
/// classes, random edges, at least one start and one reporting state.
fn random_nfa(rng: &mut StdRng) -> Nfa {
    let n = rng.random_range(2..12usize);
    let mut builder = NfaBuilder::new();
    for i in 0..n {
        let mut class = SymbolClass::EMPTY;
        for _ in 0..rng.random_range(1..6usize) {
            class.insert(rng.random());
        }
        let class = if rng.random_bool(0.5) { !class } else { class };
        let id = builder.add_ste(class);
        if i % 3 == 0 {
            builder.set_start(id, StartKind::AllInput);
        }
        if i % 4 == 1 {
            builder.set_report(id, i as u32);
        }
    }
    // Always at least one start and one reporting state.
    builder.set_start(SteId(0), StartKind::AllInput);
    builder.set_report(SteId((n - 1) as u32), 99);
    for _ in 0..rng.random_range(0..20usize) {
        let from = SteId(rng.random_range(0..n) as u32);
        let to = SteId(rng.random_range(0..n) as u32);
        builder.add_edge(from, to);
    }
    builder.build().expect("non-empty classes")
}

#[test]
fn glushkov_agrees_with_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6100 + seed);
        let pattern = random_pattern(&mut rng);
        let ast = regex::parse(&pattern).unwrap();
        if ast.is_nullable() {
            continue;
        }
        let nfa = regex::compile(&pattern).unwrap();
        let input = random_input(&mut rng);
        let simulated = Simulator::new(&nfa).run(&input).report_offsets();
        let expected = reference::scan_report_offsets(&ast, &input);
        assert_eq!(simulated, expected, "seed {seed}, pattern {pattern}");
    }
}

/// The tentpole invariant: the compiled engine, the interpreted
/// reference engine, and the batched runner agree bit-for-bit (reports
/// and offsets) with each other — and with `regex::reference` where a
/// pattern semantics oracle exists — on random patterns × inputs.
#[test]
fn compiled_interpreted_and_reference_agree() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0_0000 + seed);
        let pattern = random_pattern(&mut rng);
        let ast = regex::parse(&pattern).unwrap();
        if ast.is_nullable() {
            continue;
        }
        let nfa = regex::compile(&pattern).unwrap();
        let input = random_input(&mut rng);

        let compiled = Simulator::new(&nfa).run(&input);
        let interpreted = InterpSimulator::new(&nfa).run(&input);
        assert_eq!(
            compiled, interpreted,
            "seed {seed}: compiled vs interpreted, pattern {pattern}"
        );

        let plan = CompiledAutomaton::compile(&nfa);
        let batched = &BatchSimulator::new(&plan).run_all([input.as_slice()])[0];
        assert_eq!(
            &compiled, batched,
            "seed {seed}: single vs batched, pattern {pattern}"
        );

        let oracle = reference::scan_report_offsets(&ast, &input);
        assert_eq!(
            compiled.report_offsets(),
            oracle,
            "seed {seed}: engine vs reference, pattern {pattern}"
        );
    }
}

/// Engine agreement on arbitrary (non-regex) NFAs, where start kinds,
/// report codes, and edge structure are unconstrained.
#[test]
fn compiled_agrees_with_interpreted_on_random_nfas() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD0_0000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let compiled = Simulator::new(&nfa).run(&input);
        let interpreted = InterpSimulator::new(&nfa).run(&input);
        assert_eq!(compiled, interpreted, "seed {seed}");
    }
}

/// Multi-step agreement: compiled and interpreted engines produce
/// identical results on nibble streams, and both map back to the
/// byte-automaton offsets.
#[test]
fn multistep_nibble_agreement() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x41B_000 + seed);
        let pattern = random_pattern(&mut rng);
        let ast = regex::parse(&pattern).unwrap();
        if ast.is_nullable() {
            continue;
        }
        let nfa = regex::compile(&pattern).unwrap();
        let input = random_input(&mut rng);
        let base = Simulator::new(&nfa).run(&input).report_offsets();

        let nibble = to_nibble_nfa(&nfa);
        let stream = to_nibble_stream(&input);

        let compiled = Simulator::new(&nibble.nfa).run_multistep(&stream, nibble.chain);
        let interpreted = InterpSimulator::new(&nibble.nfa).run_multistep(&stream, nibble.chain);
        assert_eq!(
            compiled, interpreted,
            "seed {seed}: nibble compiled vs interpreted, pattern {pattern}"
        );

        let plan = CompiledAutomaton::compile(&nibble.nfa);
        let batched =
            &BatchSimulator::with_chain(&plan, nibble.chain).run_all([stream.as_slice()])[0];
        assert_eq!(
            &compiled, batched,
            "seed {seed}: nibble single vs batched, pattern {pattern}"
        );

        let mut mapped: Vec<usize> = compiled
            .reports
            .iter()
            .map(|r| r.offset / nibble.chain)
            .collect();
        mapped.dedup();
        assert_eq!(
            mapped, base,
            "seed {seed}: nibble offsets, pattern {pattern}"
        );
    }
}

/// The threaded batch path returns exactly what the sequential path
/// returns, in stream order.
#[test]
fn parallel_batch_agrees_with_sequential() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(0xBA7C4 + seed);
        let nfa = random_nfa(&mut rng);
        let streams: Vec<Vec<u8>> = (0..17).map(|_| random_input(&mut rng)).collect();
        let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        let plan = CompiledAutomaton::compile(&nfa);
        let batch = BatchSimulator::new(&plan);
        let sequential = batch.run_all(refs.iter().copied());
        for threads in [2, 3, 5] {
            assert_eq!(
                batch.run_parallel(&refs, threads),
                sequential,
                "seed {seed}, threads {threads}"
            );
        }
    }
}

/// Splits `input` into random chunks (including empty and 1-byte ones),
/// preserving order and concatenation.
fn random_chunks<'a>(rng: &mut StdRng, input: &'a [u8]) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut rest = input;
    while !rest.is_empty() {
        let cut = rng.random_range(0..=rest.len().min(5));
        let (chunk, tail) = rest.split_at(cut);
        chunks.push(chunk);
        rest = tail;
    }
    chunks.push(rest);
    chunks
}

/// Feeds `chunks` through a fresh session of `engine` and finishes.
fn via_session<E: AutomataEngine>(engine: &E, chunks: &[&[u8]]) -> RunResult {
    let mut session = engine.start();
    for chunk in chunks {
        session.feed(chunk);
    }
    session.finish()
}

/// Chunk-boundary equivalence, the streaming-session invariant: feeding
/// an input in arbitrary chunks (down to single bytes) through any
/// engine's session produces a result identical to the one-shot run of
/// that engine — and the engines agree with each other.
#[test]
fn chunked_feed_equals_one_shot_across_engines() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E55_0000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let chunks = random_chunks(&mut rng, &input);
        let bytes: Vec<&[u8]> = input.chunks(1).collect();

        let mut compiled_engine = Simulator::new(&nfa);
        let one_shot = compiled_engine.run(&input);
        assert_eq!(
            via_session(&compiled_engine, &chunks),
            one_shot,
            "seed {seed}: byte session, chunks {chunks:?}"
        );
        assert_eq!(
            via_session(&compiled_engine, &bytes),
            one_shot,
            "seed {seed}: byte session, 1-byte chunks"
        );

        let mut interp_engine = InterpSimulator::new(&nfa);
        assert_eq!(
            via_session(&interp_engine, &chunks),
            interp_engine.run(&input),
            "seed {seed}: interp session"
        );
        assert_eq!(
            via_session(&interp_engine, &chunks),
            one_shot,
            "seed {seed}: interp vs compiled"
        );

        // Strided: odd-length chunks split stride pairs; the carry byte
        // must keep absolute offsets intact.
        let strided = StridedNfa::from_nfa(&nfa);
        let mut strided_engine = StridedSimulator::new(&strided);
        let strided_one_shot = strided_engine.run(&input);
        assert_eq!(
            via_session(&strided_engine, &chunks),
            strided_one_shot,
            "seed {seed}: strided session, chunks {chunks:?}"
        );
        assert_eq!(
            via_session(&strided_engine, &bytes),
            strided_one_shot,
            "seed {seed}: strided session, 1-byte chunks"
        );
        assert_eq!(
            strided_one_shot.report_offsets(),
            one_shot.report_offsets(),
            "seed {seed}: strided vs byte offsets"
        );
    }
}

/// Multi-step chunk-boundary equivalence: chunks that split a
/// `chain`-long sub-symbol group must not perturb start-gating.
#[test]
fn chunked_multistep_feed_equals_one_shot() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E55_1000 + seed);
        let pattern = random_pattern(&mut rng);
        let ast = regex::parse(&pattern).unwrap();
        if ast.is_nullable() {
            continue;
        }
        let nfa = regex::compile(&pattern).unwrap();
        let nibble = to_nibble_nfa(&nfa);
        let input = random_input(&mut rng);
        let stream = to_nibble_stream(&input);
        let chunks = random_chunks(&mut rng, &stream);

        let one_shot = Simulator::new(&nibble.nfa).run_multistep(&stream, nibble.chain);
        let plan = CompiledAutomaton::compile(&nibble.nfa);
        let mut session = ByteSession::with_chain(&plan, nibble.chain);
        for chunk in &chunks {
            session.feed(chunk);
        }
        assert_eq!(
            session.finish(),
            one_shot,
            "seed {seed}: multistep session, pattern {pattern}, chunks {chunks:?}"
        );

        let interp_engine = InterpSimulator::new(&nibble.nfa);
        let mut interp_session = interp_engine.start_multistep(nibble.chain);
        for chunk in &chunks {
            interp_session.feed(chunk);
        }
        assert_eq!(
            interp_session.finish(),
            one_shot,
            "seed {seed}: interp multistep session, pattern {pattern}"
        );
    }
}

/// The one-shot wrappers are thin shells over sessions: their results
/// are byte-identical to explicit session runs (no silent behavior
/// change for existing benches).
#[test]
fn one_shot_wrappers_identical_to_sessions() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E55_2000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);

        let mut sim = Simulator::new(&nfa);
        let via_session = {
            let mut session = sim.start();
            session.feed(&input);
            session.finish()
        };
        assert_eq!(sim.run(&input), via_session, "seed {seed}: Simulator::run");

        let strided = StridedNfa::from_nfa(&nfa);
        let mut ssim = StridedSimulator::new(&strided);
        let via_session = {
            let mut session = ssim.start();
            session.feed(&input);
            session.finish()
        };
        assert_eq!(
            ssim.run(&input),
            via_session,
            "seed {seed}: StridedSimulator::run"
        );

        let mut isim = InterpSimulator::new(&nfa);
        let via_session = {
            let mut session = isim.start();
            session.feed(&input);
            session.finish()
        };
        assert_eq!(
            isim.run(&input),
            via_session,
            "seed {seed}: InterpSimulator::run"
        );
    }
}

/// Framed wire ingestion: random flows, random frame fragmentation,
/// random wire chunking — per-stream results equal one-shot runs.
#[test]
fn framed_ingest_equals_one_shot_runs() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E55_3000 + seed);
        let nfa = random_nfa(&mut rng);
        let flows: Vec<Vec<u8>> = (0..rng.random_range(1..6usize))
            .map(|_| random_input(&mut rng))
            .collect();

        // Encode each flow as randomly sized frames, interleaved
        // round-robin, with close markers at the end.
        let mut wire = Vec::new();
        let mut remaining: Vec<&[u8]> = flows.iter().map(Vec::as_slice).collect();
        while remaining.iter().any(|r| !r.is_empty()) {
            for (id, rest) in remaining.iter_mut().enumerate() {
                if rest.is_empty() {
                    continue;
                }
                let take = rng.random_range(1..=rest.len().min(7));
                let (frame, tail) = rest.split_at(take);
                encode_frame(id as StreamId, frame, &mut wire);
                *rest = tail;
            }
        }
        for id in 0..flows.len() {
            encode_close(id as StreamId, &mut wire);
        }

        let plan = CompiledAutomaton::compile(&nfa);
        let mut batch = BatchSimulator::new(&plan);
        let mut decoder = FrameDecoder::new();
        let mut closed: Vec<(StreamId, RunResult)> = Vec::new();
        for piece in random_chunks(&mut rng, &wire) {
            batch.ingest(&mut decoder, piece, &mut closed).unwrap();
        }
        assert!(decoder.is_idle(), "seed {seed}");
        assert_eq!(closed.len(), flows.len(), "seed {seed}");
        assert_eq!(batch.open_count(), 0, "seed {seed}");

        let mut single = Simulator::new(&nfa);
        for (stream, result) in closed {
            assert_eq!(
                result,
                single.run(&flows[stream as usize]),
                "seed {seed}, stream {stream}"
            );
        }
    }
}

/// The shard counts every sharding assertion sweeps: one shard (the
/// degenerate flat case), two, and one shard per connected component.
fn shard_counts() -> [usize; 3] {
    [1, 2, usize::MAX]
}

/// The sharding tentpole invariant, one-shot path: for every shard
/// count the sharded engine's `RunResult` — reports, order, activity,
/// and the derived buffer stats — is bit-identical to the flat engine.
#[test]
fn sharded_one_shot_equals_flat() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x54A2_0000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let flat = Simulator::new(&nfa).run(&input);
        for shards in shard_counts() {
            let sharded = ShardedSimulator::new(&nfa, shards).run(&input);
            assert_eq!(sharded, flat, "seed {seed}, {shards} shards");
            assert_eq!(
                sharded.buffer_stats(input.len()),
                flat.buffer_stats(input.len()),
                "seed {seed}, {shards} shards"
            );
        }
        // Idle-shard skipping off: same results, more visited words.
        let mut no_skip = ShardedSimulator::per_component(&nfa).skip_idle(false);
        assert_eq!(no_skip.run(&input), flat, "seed {seed}: skip_idle off");
    }
}

/// Chunked-session path: feeding the sharded engine in arbitrary
/// chunks (down to single bytes) equals the flat one-shot run, and the
/// session's live buffer stats agree with the flat session's.
#[test]
fn sharded_chunked_feed_equals_flat() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x54A2_1000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let chunks = random_chunks(&mut rng, &input);
        let flat_engine = Simulator::new(&nfa);
        let flat = via_session(&flat_engine, &chunks);
        for shards in shard_counts() {
            let engine = ShardedSimulator::new(&nfa, shards);
            assert_eq!(
                via_session(&engine, &chunks),
                flat,
                "seed {seed}, {shards} shards, chunks {chunks:?}"
            );
            let bytes: Vec<&[u8]> = input.chunks(1).collect();
            assert_eq!(
                via_session(&engine, &bytes),
                flat,
                "seed {seed}, {shards} shards, 1-byte chunks"
            );
        }
        // Buffer stats mid-stream agree between flat and sharded
        // sessions fed identically.
        let mut flat_session = flat_engine.start();
        let engine = ShardedSimulator::new(&nfa, 2);
        let mut sharded_session = engine.start();
        for chunk in &chunks {
            flat_session.feed(chunk);
            sharded_session.feed(chunk);
            assert_eq!(
                flat_session.buffer_stats(),
                sharded_session.buffer_stats(),
                "seed {seed}"
            );
        }
    }
}

/// Framed-ingest path: demuxing random interleaved flows through a
/// sharded stream table (with and without a resident-session cap)
/// yields per-flow results identical to flat one-shot runs.
#[test]
fn sharded_framed_ingest_equals_flat() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x54A2_2000 + seed);
        let nfa = random_nfa(&mut rng);
        let flows: Vec<Vec<u8>> = (0..rng.random_range(1..6usize))
            .map(|_| random_input(&mut rng))
            .collect();

        let mut wire = Vec::new();
        let mut remaining: Vec<&[u8]> = flows.iter().map(Vec::as_slice).collect();
        while remaining.iter().any(|r| !r.is_empty()) {
            for (id, rest) in remaining.iter_mut().enumerate() {
                if rest.is_empty() {
                    continue;
                }
                let take = rng.random_range(1..=rest.len().min(7));
                let (frame, tail) = rest.split_at(take);
                encode_frame(id as StreamId, frame, &mut wire);
                *rest = tail;
            }
        }
        for id in 0..flows.len() {
            encode_close(id as StreamId, &mut wire);
        }

        let mut single = Simulator::new(&nfa);
        let expected: Vec<RunResult> = flows.iter().map(|f| single.run(f)).collect();

        for shards in shard_counts() {
            let plan = ShardedAutomaton::compile(&nfa, shards);
            for cap in [None, Some(1), Some(2)] {
                let mut batch = BatchSimulator::new(&plan);
                if let Some(cap) = cap {
                    batch = batch.max_resident(cap);
                }
                let mut decoder = FrameDecoder::new();
                let mut closed: Vec<(StreamId, RunResult)> = Vec::new();
                for piece in random_chunks(&mut rng, &wire) {
                    batch.ingest(&mut decoder, piece, &mut closed).unwrap();
                }
                assert!(decoder.is_idle(), "seed {seed}");
                assert_eq!(closed.len(), flows.len(), "seed {seed}");
                assert_eq!(batch.open_count(), 0, "seed {seed}");
                for (stream, result) in closed {
                    assert_eq!(
                        result, expected[stream as usize],
                        "seed {seed}, {shards} shards, cap {cap:?}, stream {stream}"
                    );
                }
            }
        }
    }
}

/// Suspend/resume transparency: parking a session mid-stream (at a
/// random boundary) and resuming — even into a *different* pooled
/// session — never perturbs the result.
#[test]
fn suspend_resume_is_transparent_mid_stream() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x54A2_3000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let cut = rng.random_range(0..=input.len());
        let flat = Simulator::new(&nfa).run(&input);

        // Flat engine sessions.
        let plan = CompiledAutomaton::compile(&nfa);
        let mut a = ByteSession::new(&plan);
        a.feed(&input[..cut]);
        let parked = a.suspend();
        a.feed(b"interloper traffic");
        a.reset();
        let mut b = ByteSession::new(&plan);
        b.resume(parked);
        b.feed(&input[cut..]);
        assert_eq!(b.finish(), flat, "seed {seed}: flat, cut {cut}");

        // Sharded engine sessions.
        let sharded_plan = ShardedAutomaton::compile(&nfa, 2);
        let mut a = cama::sim::ShardedSession::new(&sharded_plan);
        a.feed(&input[..cut]);
        let parked = a.suspend();
        a.feed(b"interloper traffic");
        a.reset();
        let mut b = cama::sim::ShardedSession::new(&sharded_plan);
        b.resume(parked);
        b.feed(&input[cut..]);
        assert_eq!(b.finish(), flat, "seed {seed}: sharded, cut {cut}");
    }
}

#[test]
fn encoding_is_exact_on_random_nfas() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE2C_000 + seed);
        let nfa = random_nfa(&mut rng);
        let plan = EncodingPlan::for_nfa(&nfa);
        assert!(plan.verify_exact(&nfa).is_ok(), "seed {seed}");
        // Entries are never fewer than states that need at least one.
        assert!(plan.total_entries() >= nfa.len(), "seed {seed}");
    }
}

/// Every encoding configuration the toolchain can produce for a random
/// NFA: the proposed pipeline (negation on), the negation-off baseline,
/// and each explicit scheme with and without clustering (negation on).
/// All four [`Scheme`] variants are sized to cover a full 256-symbol
/// domain, which random negated classes force.
fn all_encodings(nfa: &Nfa) -> Vec<(String, EncodingPlan)> {
    let mut encodings = vec![
        (
            "proposed/negation-on".to_string(),
            EncodingPlan::for_nfa(nfa),
        ),
        (
            "raw/negation-off".to_string(),
            EncodingPlan::without_negation(nfa),
        ),
    ];
    let schemes = [
        ("one_zero_256", Scheme::OneZero { len: 256 }),
        ("multi_zeros_11", Scheme::MultiZeros { len: 11 }),
        (
            "two_zeros_prefix_32",
            Scheme::TwoZerosPrefix {
                prefix: 16,
                suffix: 16,
            },
        ),
        (
            "one_zero_prefix_32",
            Scheme::OneZeroPrefix {
                prefix: 16,
                suffix: 16,
            },
        ),
    ];
    for (name, scheme) in schemes {
        for clustered in [true, false] {
            encodings.push((
                format!("{name}/clustered={clustered}"),
                EncodingPlan::with_scheme(nfa, scheme, clustered),
            ));
        }
    }
    encodings
}

/// The encoding-aware tentpole invariant, flat one-shot path: for every
/// scheme × clustering × negation configuration, executing on the
/// compiled *encoded* plan (codebook lookup + encoded entry masks,
/// inverters included) is bit-identical to the byte plan — reports,
/// order, offsets, and activity statistics — with `verify_exact`
/// cross-checking the static image on the same automata.
#[test]
fn encoded_execution_equals_byte_across_schemes() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE2C0_0000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let byte = Simulator::new(&nfa).run(&input);
        for (label, encoding) in all_encodings(&nfa) {
            encoding
                .verify_exact(&nfa)
                .unwrap_or_else(|e| panic!("seed {seed}, {label}: {e}"));
            let mut sim = EncodedSimulator::with_encoding(&nfa, encoding);
            assert_eq!(sim.run(&input), byte, "seed {seed}, {label}");
        }
    }
}

/// Chunked-session and framed-ingest paths of the encoded engine: both
/// must equal byte one-shot runs for arbitrary chunk and frame
/// boundaries, and the stream table must serve encoded flows unchanged.
#[test]
fn encoded_chunked_and_framed_equal_byte() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE2C0_1000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let chunks = random_chunks(&mut rng, &input);
        let byte = Simulator::new(&nfa).run(&input);

        let engine = EncodedSimulator::new(&nfa);
        assert_eq!(
            via_session(&engine, &chunks),
            byte,
            "seed {seed}: encoded session, chunks {chunks:?}"
        );
        let bytes: Vec<&[u8]> = input.chunks(1).collect();
        assert_eq!(
            via_session(&engine, &bytes),
            byte,
            "seed {seed}: encoded session, 1-byte chunks"
        );

        // Framed ingest over an encoded stream table.
        let flows: Vec<Vec<u8>> = (0..rng.random_range(1..5usize))
            .map(|_| random_input(&mut rng))
            .collect();
        let mut wire = Vec::new();
        let mut remaining: Vec<&[u8]> = flows.iter().map(Vec::as_slice).collect();
        while remaining.iter().any(|r| !r.is_empty()) {
            for (id, rest) in remaining.iter_mut().enumerate() {
                if rest.is_empty() {
                    continue;
                }
                let take = rng.random_range(1..=rest.len().min(7));
                let (frame, tail) = rest.split_at(take);
                encode_frame(id as StreamId, frame, &mut wire);
                *rest = tail;
            }
        }
        for id in 0..flows.len() {
            encode_close(id as StreamId, &mut wire);
        }
        let mut batch = BatchSimulator::new(engine.plan());
        let mut decoder = FrameDecoder::new();
        let mut closed: Vec<(StreamId, RunResult)> = Vec::new();
        for piece in random_chunks(&mut rng, &wire) {
            batch.ingest(&mut decoder, piece, &mut closed).unwrap();
        }
        assert_eq!(closed.len(), flows.len(), "seed {seed}");
        let mut single = Simulator::new(&nfa);
        for (stream, result) in closed {
            assert_eq!(
                result,
                single.run(&flows[stream as usize]),
                "seed {seed}, stream {stream}"
            );
        }
    }
}

/// Sharded encoded execution — per-shard `CompiledEncodedAutomaton`s
/// sharing one codebook — equals the flat byte engine for every
/// assignment shape (single shard, split components, per-component),
/// one-shot and chunked, and suspend/resume round-trips transparently
/// through pooled sessions for both flat and sharded encoded flavours.
#[test]
fn encoded_sharded_and_suspend_resume_equal_byte() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE2C0_2000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let chunks = random_chunks(&mut rng, &input);
        let byte = Simulator::new(&nfa).run(&input);
        let encoding = EncodingPlan::for_nfa(&nfa);

        let (component_ids, _) = graph::component_ids(&nfa);
        let assignments: [Vec<u32>; 3] = [
            vec![0; nfa.len()],
            (0..nfa.len() as u32).map(|i| i % 2).collect(),
            component_ids,
        ];
        for (kind, assignment) in assignments.iter().enumerate() {
            let sharded = encoding.compile_sharded(&nfa, assignment);
            let mut session = cama::sim::ShardedSession::new(&sharded);
            session.feed(&input);
            assert_eq!(
                session.finish(),
                byte,
                "seed {seed}: sharded encoded one-shot, assignment {kind}"
            );
            for chunk in &chunks {
                session.feed(chunk);
            }
            assert_eq!(
                session.finish(),
                byte,
                "seed {seed}: sharded encoded chunked, assignment {kind}"
            );
        }

        // Suspend/resume transparency, flat and sharded encoded.
        let cut = rng.random_range(0..=input.len());
        let flat_plan = encoding.compile(&nfa);
        let mut a = EncodedSession::new(&flat_plan);
        a.feed(&input[..cut]);
        let parked = a.suspend();
        a.feed(b"interloper traffic");
        a.reset();
        let mut b = EncodedSession::new(&flat_plan);
        b.resume(parked);
        b.feed(&input[cut..]);
        assert_eq!(b.finish(), byte, "seed {seed}: flat encoded, cut {cut}");

        let sharded_plan = encoding.compile_sharded(
            &nfa,
            &(0..nfa.len() as u32).map(|i| i % 2).collect::<Vec<_>>(),
        );
        let mut a = cama::sim::ShardedSession::new(&sharded_plan);
        a.feed(&input[..cut]);
        let parked = a.suspend();
        a.reset();
        let mut b = cama::sim::ShardedSession::new(&sharded_plan);
        b.resume(parked);
        b.feed(&input[cut..]);
        assert_eq!(b.finish(), byte, "seed {seed}: sharded encoded, cut {cut}");
    }
}

#[test]
fn stride_equivalence_on_random_nfas() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57_1D00 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let baseline = Simulator::new(&nfa).run(&input).report_offsets();
        let strided = StridedNfa::from_nfa(&nfa);
        let strided_offsets = StridedSimulator::new(&strided).run(&input).report_offsets();
        assert_eq!(baseline, strided_offsets, "seed {seed}");
    }
}

/// Every per-half encoding configuration the strided toolchain can
/// produce: the proposed pipeline (negation on), the negation-off
/// baseline, and each explicit scheme with and without clustering. All
/// four [`Scheme`] variants are sized for a full 256-symbol domain,
/// which random negated classes (and the FULL halves of odd-entry /
/// even-report strided states) force.
fn all_strided_encodings(strided: &StridedNfa) -> Vec<(String, StridedEncoding)> {
    let mut encodings = vec![
        (
            "proposed/negation-on".to_string(),
            StridedEncoding::for_strided(strided),
        ),
        (
            "raw/negation-off".to_string(),
            StridedEncoding::without_negation(strided),
        ),
    ];
    let schemes = [
        ("one_zero_256", Scheme::OneZero { len: 256 }),
        ("multi_zeros_11", Scheme::MultiZeros { len: 11 }),
        (
            "two_zeros_prefix_32",
            Scheme::TwoZerosPrefix {
                prefix: 16,
                suffix: 16,
            },
        ),
        (
            "one_zero_prefix_32",
            Scheme::OneZeroPrefix {
                prefix: 16,
                suffix: 16,
            },
        ),
    ];
    for (name, scheme) in schemes {
        for clustered in [true, false] {
            encodings.push((
                format!("{name}/clustered={clustered}"),
                StridedEncoding::with_scheme(strided, scheme, clustered),
            ));
        }
    }
    encodings
}

/// The strided-parity tentpole invariant, flat one-shot path: for every
/// per-half scheme × clustering × negation configuration, executing on
/// the compiled *encoded strided* plan (per-half codebook lookups +
/// per-half entry masks, inverters included) is bit-identical to the
/// byte strided plan — reports, order, offsets, activity — whose
/// offsets in turn equal the flat byte engine's, odd-length inputs
/// (zero-padded flush pair) included. `verify_exact` cross-checks each
/// half's static image on the same automata.
#[test]
fn encoded_strided_equals_byte_strided_across_schemes() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57_2E00 + seed);
        let nfa = random_nfa(&mut rng);
        // Force odd lengths on half the seeds so the pad path is hot.
        let mut input = random_input(&mut rng);
        if seed % 2 == 0 && input.len().is_multiple_of(2) {
            input.push(b'a');
        }
        let flat_offsets = Simulator::new(&nfa).run(&input).report_offsets();
        let strided = StridedNfa::from_nfa(&nfa);
        let byte_strided = StridedSimulator::new(&strided).run(&input);
        assert_eq!(
            byte_strided.report_offsets(),
            flat_offsets,
            "seed {seed}: byte-strided vs flat-byte"
        );
        for (label, encoding) in all_strided_encodings(&strided) {
            encoding
                .verify_exact(&strided)
                .unwrap_or_else(|e| panic!("seed {seed}, {label}: {e}"));
            let mut sim = EncodedStridedSimulator::with_encoding(&strided, encoding);
            assert_eq!(sim.run(&input), byte_strided, "seed {seed}, {label}");
        }
    }
}

/// Chunked-session path of both strided engines: arbitrary chunks and
/// 1-byte chunks (every pair split, the carry byte crossing every
/// boundary) equal the one-shot run and the flat byte engine.
#[test]
fn strided_chunked_sessions_equal_one_shot() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57_2F00 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let chunks = random_chunks(&mut rng, &input);
        let bytes: Vec<&[u8]> = input.chunks(1).collect();

        let strided = StridedNfa::from_nfa(&nfa);
        let mut byte_engine = StridedSimulator::new(&strided);
        let one_shot = byte_engine.run(&input);
        assert_eq!(
            via_session(&byte_engine, &chunks),
            one_shot,
            "seed {seed}: byte-strided session, chunks {chunks:?}"
        );
        assert_eq!(
            via_session(&byte_engine, &bytes),
            one_shot,
            "seed {seed}: byte-strided session, 1-byte chunks"
        );

        let encoded_engine = EncodedStridedSimulator::new(&strided);
        assert_eq!(
            via_session(&encoded_engine, &chunks),
            one_shot,
            "seed {seed}: encoded-strided session, chunks {chunks:?}"
        );
        assert_eq!(
            via_session(&encoded_engine, &bytes),
            one_shot,
            "seed {seed}: encoded-strided session, 1-byte chunks"
        );
    }
}

/// Sharded strided execution — byte and encoded shards over shard
/// counts 1, 2, and per-component (plus split-component assignments for
/// the encoded flavour) — is bit-identical to the flat strided engine,
/// one-shot and chunked.
#[test]
fn sharded_strided_equals_flat_strided() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57_3000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let chunks = random_chunks(&mut rng, &input);
        let strided = StridedNfa::from_nfa(&nfa);
        let flat = StridedSimulator::new(&strided).run(&input);

        for shards in [1usize, 2, usize::MAX] {
            let plan = ShardedAutomaton::compile_strided(&strided, shards);
            let mut session = cama::sim::ShardedSession::new(&plan);
            session.feed(&input);
            assert_eq!(
                session.finish_sharded_with(&mut cama::sim::activity::NullObserver),
                flat,
                "seed {seed}: sharded strided one-shot, {shards} shards"
            );
            for chunk in &chunks {
                session.feed(chunk);
            }
            assert_eq!(
                session.finish(),
                flat,
                "seed {seed}: sharded strided chunked, {shards} shards"
            );
        }
        // Per-component sharding through the explicit-assignment path.
        let (ids, _) = strided.component_ids();
        let per_cc = ShardedAutomaton::compile_strided_with_assignment(&strided, &ids);
        let mut session = cama::sim::ShardedSession::new(&per_cc);
        session.feed(&input);
        assert_eq!(session.finish(), flat, "seed {seed}: per-component");

        // Encoded strided shards sharing one pair of codebooks.
        let encoding = StridedEncoding::for_strided(&strided);
        let assignments: [Vec<u32>; 3] = [
            vec![0; strided.len()],
            (0..strided.len() as u32).map(|i| i % 2).collect(),
            ids,
        ];
        for (kind, assignment) in assignments.iter().enumerate() {
            let sharded = encoding.compile_sharded(&strided, assignment);
            let mut session = cama::sim::ShardedSession::new(&sharded);
            session.feed(&input);
            assert_eq!(
                session.finish(),
                flat,
                "seed {seed}: sharded encoded strided one-shot, assignment {kind}"
            );
            for chunk in &chunks {
                session.feed(chunk);
            }
            assert_eq!(
                session.finish(),
                flat,
                "seed {seed}: sharded encoded strided chunked, assignment {kind}"
            );
        }
    }
}

/// The strided stream table under `max_resident` caps: random
/// interleavings of byte/encoded, flat/sharded strided flows (odd
/// chunks park flows mid-pair, so the carry byte round-trips through
/// `SuspendedFlow`) produce results bit-identical to an uncapped table
/// and to flat one-shot runs.
#[test]
fn strided_batch_capped_equals_uncapped() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57_3100 + seed);
        let nfa = random_nfa(&mut rng);
        let strided = StridedNfa::from_nfa(&nfa);
        let flows: Vec<Vec<u8>> = (0..rng.random_range(2..6usize))
            .map(|_| random_input(&mut rng))
            .collect();
        let mut flat_engine = StridedSimulator::new(&strided);
        let expected: Vec<RunResult> = flows.iter().map(|f| flat_engine.run(f)).collect();

        // Random interleaved feeding schedule with odd chunk sizes.
        let mut schedule: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        let mut cursors = vec![0usize; flows.len()];
        loop {
            let pending: Vec<usize> = (0..flows.len())
                .filter(|&f| cursors[f] < flows[f].len())
                .collect();
            let Some(&flow) = pending.get(rng.random_range(0..pending.len().max(1))) else {
                break;
            };
            let take = rng
                .random_range(1..=3usize)
                .min(flows[flow].len() - cursors[flow]);
            schedule.push((flow, cursors[flow]..cursors[flow] + take));
            cursors[flow] += take;
        }

        let byte_plan = cama::core::compiled::CompiledStridedAutomaton::compile(&strided);
        let encoded_plan = StridedEncoding::for_strided(&strided).compile(&strided);
        let sharded_plan = ShardedAutomaton::compile_strided(&strided, 2);

        fn run_schedule<P: cama::sim::StreamPlan>(
            plan: &P,
            flows: &[Vec<u8>],
            schedule: &[(usize, std::ops::Range<usize>)],
            cap: Option<usize>,
        ) -> Vec<RunResult> {
            let mut batch = BatchSimulator::new(plan);
            if let Some(cap) = cap {
                batch = batch.max_resident(cap);
            }
            for (flow, range) in schedule {
                batch.feed(*flow as StreamId, &flows[*flow][range.clone()]);
                if let Some(cap) = cap {
                    assert!(batch.resident_count() <= cap);
                }
            }
            (0..flows.len())
                .map(|f| batch.close(f as StreamId))
                .collect()
        }

        for cap in [None, Some(1), Some(2)] {
            assert_eq!(
                run_schedule(&byte_plan, &flows, &schedule, cap),
                expected,
                "seed {seed}: byte strided table, cap {cap:?}"
            );
            assert_eq!(
                run_schedule(&encoded_plan, &flows, &schedule, cap),
                expected,
                "seed {seed}: encoded strided table, cap {cap:?}"
            );
            assert_eq!(
                run_schedule(&sharded_plan, &flows, &schedule, cap),
                expected,
                "seed {seed}: sharded strided table, cap {cap:?}"
            );
        }
    }
}

/// The serving control plane is execution-transparent: under every
/// shipped victim policy (LRU, class-then-LRU, full QoS), tight
/// residency caps, starvation-level token-bucket budgets with deferral,
/// and tick-driven QoS draining, admitted traffic computes
/// bit-identically to an uncapped, policy-free stream table. Policies
/// decide *when* flows run, never *what* they compute.
#[test]
fn controlled_batch_policies_equal_uncapped_table() {
    const CLASSES: [QosClass; 4] = [
        QosClass::Background,
        QosClass::Standard,
        QosClass::Premium,
        QosClass::Realtime,
    ];

    fn run_controlled<P: cama::sim::StreamPlan, V: VictimPolicy>(
        plan: &P,
        policy: V,
        config: ControlConfig,
        flows: &[Vec<u8>],
        specs: &[FlowSpec],
        schedule: &[(usize, std::ops::Range<usize>)],
        tick_every: Option<usize>,
    ) -> Vec<RunResult> {
        let mut ctl = ControlledBatch::with_policy(plan, config, policy);
        for (i, spec) in specs.iter().enumerate() {
            assert!(ctl.open(i as StreamId, *spec).is_admitted());
        }
        for (step, (flow, range)) in schedule.iter().enumerate() {
            let verdict = ctl.feed(*flow as StreamId, &flows[*flow][range.clone()]);
            // The deferral buffer absorbs everything the budgets
            // refuse: nothing is dropped, only delayed.
            assert_eq!(verdict.rejected, 0, "deferral must absorb the whole chunk");
            if let Some(every) = tick_every {
                if (step + 1) % every == 0 {
                    ctl.tick();
                }
            }
        }
        (0..flows.len()).map(|f| ctl.close(f as StreamId)).collect()
    }

    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC7_2200 + seed);
        let nfa = random_nfa(&mut rng);
        let flows: Vec<Vec<u8>> = (0..rng.random_range(2..6usize))
            .map(|_| random_input(&mut rng))
            .collect();
        let specs: Vec<FlowSpec> = (0..flows.len())
            .map(|_| {
                let mut spec = FlowSpec::new(rng.random_range(0..3u32))
                    .with_class(CLASSES[rng.random_range(0..CLASSES.len())]);
                if rng.random_bool(0.5) {
                    spec = spec.with_deadline(rng.random_range(0..32u64));
                }
                spec
            })
            .collect();

        // Random interleaved feeding schedule, as in the capped-table
        // harness above.
        let mut schedule: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        let mut cursors = vec![0usize; flows.len()];
        loop {
            let pending: Vec<usize> = (0..flows.len())
                .filter(|&f| cursors[f] < flows[f].len())
                .collect();
            let Some(&flow) = pending.get(rng.random_range(0..pending.len().max(1))) else {
                break;
            };
            let take = rng
                .random_range(1..=3usize)
                .min(flows[flow].len() - cursors[flow]);
            schedule.push((flow, cursors[flow]..cursors[flow] + take));
            cursors[flow] += take;
        }

        let plan = CompiledAutomaton::compile(&nfa);
        let sharded = ShardedAutomaton::compile(&nfa, 2);

        // Baseline: the raw, uncapped, policy-free table.
        let expected: Vec<RunResult> = {
            let mut batch = BatchSimulator::new(&plan);
            for (flow, range) in &schedule {
                batch.feed(*flow as StreamId, &flows[*flow][range.clone()]);
            }
            (0..flows.len())
                .map(|f| batch.close(f as StreamId))
                .collect()
        };

        // Every victim policy under tight residency caps, on flat and
        // sharded plans.
        for cap in [1usize, 2] {
            let config = || ControlConfig::new().max_resident(cap);
            assert_eq!(
                run_controlled(&plan, LruPolicy, config(), &flows, &specs, &schedule, None),
                expected,
                "seed {seed}: lru, cap {cap}"
            );
            assert_eq!(
                run_controlled(
                    &plan,
                    ClassLruPolicy,
                    config(),
                    &flows,
                    &specs,
                    &schedule,
                    None
                ),
                expected,
                "seed {seed}: class-lru, cap {cap}"
            );
            assert_eq!(
                run_controlled(&plan, QosPolicy, config(), &flows, &specs, &schedule, None),
                expected,
                "seed {seed}: qos, cap {cap}"
            );
            assert_eq!(
                run_controlled(
                    &sharded,
                    QosPolicy,
                    config(),
                    &flows,
                    &specs,
                    &schedule,
                    None
                ),
                expected,
                "seed {seed}: qos sharded, cap {cap}"
            );
        }

        // Admission with deferral: starvation-tight flow and tenant
        // budgets push most bytes through the deferral buffer and the
        // tick-driven QoS drain; close flushes whatever is left. The
        // results are still bit-identical — budgets only ever delay.
        let starved = ControlConfig::new()
            .max_resident(2)
            .flow_rate(RateLimit::new(2, 1))
            .default_tenant_rate(RateLimit::new(3, 2));
        assert_eq!(
            run_controlled(
                &plan,
                QosPolicy,
                starved.clone(),
                &flows,
                &specs,
                &schedule,
                Some(3)
            ),
            expected,
            "seed {seed}: qos with deferral, flat"
        );
        assert_eq!(
            run_controlled(
                &sharded,
                LruPolicy,
                starved,
                &flows,
                &specs,
                &schedule,
                Some(2)
            ),
            expected,
            "seed {seed}: lru with deferral, sharded"
        );
    }
}

#[test]
fn rcb_equals_fcb_on_band_edges() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2CB_000 + seed);
        // Build edges guaranteed inside the band: target in the source's
        // group or the next.
        let edges: Vec<(usize, usize)> = (0..rng.random_range(1..40usize))
            .map(|_| {
                let from = rng.random_range(0..256usize);
                let jump = rng.random_range(0..86usize);
                let lo = (from / K_DIA) * K_DIA;
                let to = (lo + jump).min(255);
                (from, to)
            })
            .filter(|&(f, t)| ReducedCrossbar::supports(K_DIA, f, t))
            .collect();
        if edges.is_empty() {
            continue;
        }
        let rcb = ReducedCrossbar::try_program(256, K_DIA, edges.iter().copied()).unwrap();
        let mut fcb = FullCrossbar::new(256);
        for &(f, t) in &edges {
            fcb.connect(f, t);
        }
        let active = BitSet::from_indices(
            256,
            (0..rng.random_range(1..8usize)).map(|_| rng.random_range(0..256usize)),
        );
        assert_eq!(rcb.route(&active), fcb.route(&active), "seed {seed}");
    }
}

#[test]
fn anml_roundtrip_on_random_nfas() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA2_3100 + seed);
        let nfa = random_nfa(&mut rng);
        let text = cama::core::anml::to_string(&nfa);
        let parsed = cama::core::anml::from_str(&text).unwrap();
        assert_eq!(parsed.len(), nfa.len(), "seed {seed}");
        assert_eq!(parsed.num_edges(), nfa.num_edges(), "seed {seed}");
        for i in 0..nfa.len() {
            let id = SteId(i as u32);
            assert_eq!(parsed.ste(id).class, nfa.ste(id).class, "seed {seed}");
            assert_eq!(parsed.ste(id).start, nfa.ste(id).start, "seed {seed}");
        }
    }
}

#[test]
fn mnrl_roundtrip_on_random_nfas() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x313_1200 + seed);
        let nfa = random_nfa(&mut rng);
        let text = cama::core::mnrl::to_string(&nfa);
        let parsed = cama::core::mnrl::from_str(&text).unwrap();
        assert_eq!(parsed.len(), nfa.len(), "seed {seed}");
        assert_eq!(parsed.num_edges(), nfa.num_edges(), "seed {seed}");
    }
}

#[test]
fn symbol_class_set_algebra() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E7_000 + seed);
        let draw = |rng: &mut StdRng| {
            let mut class = SymbolClass::EMPTY;
            for _ in 0..rng.random_range(0..40usize) {
                class.insert(rng.random());
            }
            class
        };
        let ca = draw(&mut rng);
        let cb = draw(&mut rng);
        // De Morgan.
        assert_eq!(!(ca | cb), !ca & !cb, "seed {seed}");
        // Union/intersection sizes.
        assert_eq!(
            (ca | cb).len() + (ca & cb).len(),
            ca.len() + cb.len(),
            "seed {seed}"
        );
        // Display → parse roundtrip through the symbol-set grammar.
        if !ca.is_empty() {
            let parsed = cama::core::anml::parse_symbol_set(&ca.to_string()).unwrap();
            assert_eq!(parsed, ca, "seed {seed}");
        }
    }
}

/// The kernel-dispatch invariant: every engine produces bit-identical
/// `RunResult`s whether the word-slice kernels run forced-scalar or on
/// whatever SIMD tier the runtime dispatcher picked for this CPU —
/// one-shot and chunked, flat, sharded, strided (selective and naive),
/// and encoded. The forced override is process-global and the results
/// are identical on every tier by construction, so flipping it while
/// sibling tests run concurrently is safe.
#[test]
fn kernels_scalar_and_dispatched_agree_across_engines() {
    use cama::core::compiled::CompiledStridedAutomaton;
    use cama::core::kernel::{self, Kernel};
    use cama::sim::StridedSession;

    fn collect(nfa: &Nfa, input: &[u8], chunks: &[&[u8]]) -> Vec<RunResult> {
        let mut results = vec![Simulator::new(nfa).run(input)];
        for shards in shard_counts() {
            results.push(ShardedSimulator::new(nfa, shards).run(input));
        }
        let strided = StridedNfa::from_nfa(nfa);
        results.push(StridedSimulator::new(&strided).run(input));
        // The non-selective strided session is the heaviest kernel
        // consumer (one fused sweep per pair cycle); feed it chunked.
        let plan = CompiledStridedAutomaton::compile(&strided);
        let mut naive = StridedSession::new(&plan);
        naive.set_selective(false);
        for chunk in chunks {
            naive.feed(chunk);
        }
        results.push(naive.finish());
        results.push(EncodedSimulator::new(nfa).run(input));
        results.push(EncodedStridedSimulator::new(&strided).run(input));
        results.push(via_session(&Simulator::new(nfa), chunks));
        results.push(via_session(&ShardedSimulator::new(nfa, 2), chunks));
        results
    }

    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51_3D00 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let chunks = random_chunks(&mut rng, &input);

        kernel::force(Some(Kernel::Scalar));
        let scalar = collect(&nfa, &input, &chunks);
        kernel::force(None);
        let dispatched = collect(&nfa, &input, &chunks);

        for (i, (s, d)) in scalar.iter().zip(&dispatched).enumerate() {
            assert_eq!(
                s,
                d,
                "seed {seed}, engine {i}: forced-scalar vs dispatched {}",
                kernel::active().name()
            );
        }
    }
}

/// Worker counts the parallel runtime must stay bit-identical across:
/// the sequential fallback (1), typical core counts, and an
/// oversubscribed pool (7 workers over at-most-a-handful of shards —
/// the session clamps to the shard count).
fn parallel_worker_counts() -> [usize; 4] {
    [1, 2, 4, 7]
}

/// Feeds chunks through a parallel session (sequential observer-free
/// fast path) and finishes; also returns the drained shard rollup so
/// callers can compare it against the sequential engine's.
fn via_parallel<P: cama::sim::ShardedExecution + 'static>(
    plan: &ShardedAutomaton<P>,
    workers: usize,
    chunks: &[&[u8]],
) -> (RunResult, cama::sim::ShardStats) {
    let mut session = ParallelShardedSession::with_workers(plan, workers);
    for chunk in chunks {
        session.feed(chunk);
    }
    let result = session.finish();
    (result, session.take_stats())
}

/// The multi-core tentpole invariant: for every plan flavour the
/// sharded engine accepts — byte, encoded, strided, encoded strided;
/// fixed two-way and per-component shardings — the worker-pinned
/// parallel session produces a `RunResult` AND a `ShardStats` rollup
/// bit-identical to the single-threaded `ShardedSession`, across
/// one-shot and randomly chunked feeds, for every worker count
/// including the oversubscribed one.
#[test]
fn parallel_sharded_equals_sequential_across_plans() {
    fn check<P: cama::sim::ShardedExecution + 'static>(
        plan: &ShardedAutomaton<P>,
        input: &[u8],
        chunks: &[&[u8]],
        label: &str,
    ) {
        let mut seq = cama::sim::ShardedSession::new(plan);
        seq.feed(input);
        let expected = seq.finish();
        let expected_stats = seq.take_stats();
        for workers in parallel_worker_counts() {
            let (one_shot, stats) = via_parallel(plan, workers, &[input]);
            assert_eq!(one_shot, expected, "{label}, {workers} workers, one-shot");
            assert_eq!(
                stats, expected_stats,
                "{label}, {workers} workers, stats rollup"
            );
            let (chunked, _) = via_parallel(plan, workers, chunks);
            assert_eq!(chunked, expected, "{label}, {workers} workers, chunked");
        }
    }

    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A7A_0000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let chunks = random_chunks(&mut rng, &input);
        let (component_ids, _) = graph::component_ids(&nfa);

        let two_way = ShardedAutomaton::compile(&nfa, 2);
        check(&two_way, &input, &chunks, &format!("seed {seed}: byte/2"));
        let per_cc = ShardedAutomaton::compile_with_assignment(&nfa, &component_ids);
        check(&per_cc, &input, &chunks, &format!("seed {seed}: byte/cc"));

        let encoding = EncodingPlan::for_nfa(&nfa);
        let halved: Vec<u32> = (0..nfa.len() as u32).map(|i| i % 2).collect();
        let encoded = encoding.compile_sharded(&nfa, &halved);
        check(&encoded, &input, &chunks, &format!("seed {seed}: encoded"));

        let strided = StridedNfa::from_nfa(&nfa);
        let strided_plan = ShardedAutomaton::compile_strided(&strided, 2);
        check(
            &strided_plan,
            &input,
            &chunks,
            &format!("seed {seed}: strided"),
        );
        let strided_encoding = StridedEncoding::for_strided(&strided);
        let strided_halved: Vec<u32> = (0..strided.len() as u32).map(|i| i % 2).collect();
        let encoded_strided = strided_encoding.compile_sharded(&strided, &strided_halved);
        check(
            &encoded_strided,
            &input,
            &chunks,
            &format!("seed {seed}: encoded strided"),
        );
    }
}

/// Suspend/resume transparency through the parallel engine, and the
/// parallel plan as a stream-table flavour: flows interleaved through a
/// residency-capped `BatchSimulator` over a `ParallelShardedPlan` (park
/// and resume cross worker-pool boundaries) compute bit-identically to
/// flat one-shot runs.
#[test]
fn parallel_suspend_resume_and_capped_stream_table() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A7A_1000 + seed);
        let nfa = random_nfa(&mut rng);
        let input = random_input(&mut rng);
        let plan = ShardedAutomaton::compile(&nfa, 2);
        let expected = {
            let mut s = cama::sim::ShardedSession::new(&plan);
            s.feed(&input);
            s.finish()
        };

        // Park mid-stream at a random cut, serve interloper traffic,
        // resume into a fresh parallel session.
        let cut = rng.random_range(0..=input.len());
        let mut a = ParallelShardedSession::with_workers(&plan, 3);
        a.feed(&input[..cut]);
        let parked = a.suspend();
        a.feed(b"interloper traffic");
        a.reset();
        let mut b = ParallelShardedSession::with_workers(&plan, 2);
        b.resume(parked);
        b.feed(&input[cut..]);
        assert_eq!(
            b.finish(),
            expected,
            "seed {seed}: parallel park, cut {cut}"
        );

        // The parallel plan through a capped stream table: interleaved
        // flows evict each other, so every flow round-trips through
        // `SuspendedFlow` between feeds.
        let flows: Vec<Vec<u8>> = (0..rng.random_range(2..5usize))
            .map(|_| random_input(&mut rng))
            .collect();
        let mut flat = cama::sim::ShardedSimulator::new(&nfa, 2);
        let expected: Vec<RunResult> = flows.iter().map(|f| flat.run(f)).collect();
        let table_plan = ParallelShardedPlan::new(ShardedAutomaton::compile(&nfa, 2), 3);
        for cap in [None, Some(1), Some(2)] {
            let mut batch = BatchSimulator::new(&table_plan);
            if let Some(cap) = cap {
                batch = batch.max_resident(cap);
            }
            let mut remaining: Vec<&[u8]> = flows.iter().map(Vec::as_slice).collect();
            while remaining.iter().any(|r| !r.is_empty()) {
                for (id, rest) in remaining.iter_mut().enumerate() {
                    if rest.is_empty() {
                        continue;
                    }
                    let take = rng.random_range(1..=rest.len().min(5));
                    let (piece, tail) = rest.split_at(take);
                    batch.feed(id as StreamId, piece);
                    *rest = tail;
                }
            }
            let closed: Vec<RunResult> = (0..flows.len())
                .map(|f| batch.close(f as StreamId))
                .collect();
            assert_eq!(closed, expected, "seed {seed}: parallel table, cap {cap:?}");
        }
    }
}

/// The work-stealing batch dispatcher: `run_parallel` results match the
/// sequential `run_all` for every thread count, and the merged
/// `ShardStats` from `run_parallel_stats` equals the sequential
/// stream-by-stream rollup folded through `ShardStats::merge`.
#[test]
fn work_stealing_batch_and_stats_merge_agree() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A7A_2000 + seed);
        let nfa = random_nfa(&mut rng);
        let streams: Vec<Vec<u8>> = (0..rng.random_range(1..9usize))
            .map(|_| random_input(&mut rng))
            .collect();
        let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        let plan = ShardedAutomaton::compile(&nfa, 2);
        let batch = BatchSimulator::new(&plan);
        let sequential = batch.run_all(refs.iter().copied());
        let mut expected_stats = cama::sim::ShardStats::default();
        for stream in &refs {
            let mut session = cama::sim::ShardedSession::new(&plan);
            session.feed(stream);
            session.finish();
            expected_stats.merge(&session.take_stats());
        }
        for threads in parallel_worker_counts() {
            let (results, stats) = batch.run_parallel_stats(&refs, threads);
            assert_eq!(results, sequential, "seed {seed}, {threads} threads");
            assert_eq!(stats, expected_stats, "seed {seed}, {threads} threads");
        }
    }
}

/// Feeds the head of every flow, hot-swaps the plan mid-stream, feeds
/// the tails, and compares each closed flow against an undisturbed run
/// on the *new* plan. The caller guarantees the two rulesets differ
/// only in components that can never fire on the test alphabet, so for
/// every flow the swap must be unobservable: identical reports (state
/// ids, codes, offsets, order) and identical cycle counts. Per-cycle
/// word statistics are excluded from the comparison — the pre-swap
/// cycles were accounted against the old plan's state space, which may
/// be a different size.
fn assert_swap_transparent<P: StreamPlan>(
    old_plan: &P,
    new_plan: &P,
    remap: &PlanRemap,
    flows: &[(Vec<u8>, usize)],
    cap: Option<usize>,
    label: &str,
    seed: u64,
) {
    let mut swapped = BatchSimulator::new(old_plan);
    if let Some(cap) = cap {
        swapped = swapped.max_resident(cap);
    }
    let mut oracle = BatchSimulator::new(new_plan);
    for (id, (input, cut)) in flows.iter().enumerate() {
        swapped.feed(id as StreamId, &input[..*cut]);
    }
    let report = swapped.swap_plan(new_plan, remap);
    assert_eq!(report.flows, flows.len(), "seed {seed}: {label}");
    for (id, (input, cut)) in flows.iter().enumerate() {
        swapped.feed(id as StreamId, &input[*cut..]);
        oracle.feed(id as StreamId, input);
    }
    for (id, (_, cut)) in flows.iter().enumerate() {
        let s = swapped.close(id as StreamId);
        let o = oracle.close(id as StreamId);
        assert_eq!(
            s.reports, o.reports,
            "seed {seed}: {label}, flow {id}, cut {cut}"
        );
        assert_eq!(
            s.activity.cycles, o.activity.cycles,
            "seed {seed}: {label}, flow {id}, cut {cut}"
        );
    }
}

/// The strongest form, for a swap onto the *same* plan with the
/// identity remap: the whole [`RunResult`] — reports, order, and every
/// activity statistic — must equal an undisturbed table fed the same
/// chunks.
fn assert_identity_swap_exact<P: StreamPlan>(
    plan: &P,
    remap: &PlanRemap,
    flows: &[(Vec<u8>, usize)],
    cap: Option<usize>,
    label: &str,
    seed: u64,
) {
    let mut swapped = BatchSimulator::new(plan);
    if let Some(cap) = cap {
        swapped = swapped.max_resident(cap);
    }
    let mut oracle = BatchSimulator::new(plan);
    for (id, (input, cut)) in flows.iter().enumerate() {
        swapped.feed(id as StreamId, &input[..*cut]);
        oracle.feed(id as StreamId, &input[..*cut]);
    }
    let report = swapped.swap_plan(plan, remap);
    assert_eq!(report.states_dropped, 0, "seed {seed}: {label}");
    for (id, (input, cut)) in flows.iter().enumerate() {
        swapped.feed(id as StreamId, &input[*cut..]);
        oracle.feed(id as StreamId, &input[*cut..]);
    }
    for (id, (_, cut)) in flows.iter().enumerate() {
        assert_eq!(
            swapped.close(id as StreamId),
            oracle.close(id as StreamId),
            "seed {seed}: {label}, flow {id}, cut {cut}"
        );
    }
}

/// The hot-swap differential harness: across flat / sharded / encoded /
/// strided plan flavours and capped tables, a mid-stream
/// [`BatchSimulator::swap_plan`] between two ruleset versions is
/// bit-identical — for flows on unchanged components — to a run that
/// never swapped. The changed components are built over symbols the
/// random inputs never contain, so *every* flow lives on unchanged
/// components and the swap must be fully unobservable; the changed
/// components still exercise the remap machinery (dropped states,
/// shifted global ids, grown rulesets).
#[test]
fn hot_swap_differential_across_flavours() {
    // Patterns over {j, q, w} only — symbols `random_input` never
    // emits, so these components never fire on test traffic. Distinct
    // entries are structurally distinct and differ in state count,
    // forcing the surviving components' global ids to move.
    const DISJOINT: [&str; 3] = ["q+j", "jj", "q?jqj"];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5A4B_7000 + seed);
        // Redraw any all-optional pattern: a homogeneous NFA cannot
        // report the empty string, so `compile_set` rejects it.
        let shared: Vec<String> = (0..rng.random_range(2..5usize))
            .map(|_| loop {
                let pattern = random_pattern(&mut rng);
                if regex::compile(&pattern).is_ok() {
                    break pattern;
                }
            })
            .collect();
        // Insert the swap-target pattern at the same position in both
        // versions so the shared patterns keep their report codes.
        let changed_pos = rng.random_range(0..=shared.len());
        let old_changed = rng.random_range(0..DISJOINT.len());
        let mut new_changed = rng.random_range(0..DISJOINT.len());
        if new_changed == old_changed {
            new_changed = (new_changed + 1) % DISJOINT.len();
        }
        let mut old_pats: Vec<&str> = shared.iter().map(String::as_str).collect();
        let mut new_pats = old_pats.clone();
        old_pats.insert(changed_pos, DISJOINT[old_changed]);
        new_pats.insert(changed_pos, DISJOINT[new_changed]);
        if rng.random_bool(0.5) {
            // A grown ruleset: the appended pattern takes a fresh
            // report code, leaving every existing code untouched.
            new_pats.push("[qw]+j");
        }
        let old_nfa = regex::compile_set(&old_pats).unwrap();
        let new_nfa = regex::compile_set(&new_pats).unwrap();
        let remap = PlanRemap::between(&old_nfa, &new_nfa);
        // Exactly the changed component's states are dropped.
        let changed_len = regex::compile(DISJOINT[old_changed]).unwrap().len();
        assert_eq!(
            remap.surviving(),
            old_nfa.len() - changed_len,
            "seed {seed}"
        );

        let flows: Vec<(Vec<u8>, usize)> = (0..rng.random_range(2..6usize))
            .map(|_| {
                let input = random_input(&mut rng);
                let cut = rng.random_range(0..=input.len());
                (input, cut)
            })
            .collect();

        // Flat byte plans.
        let old_flat = CompiledAutomaton::compile(&old_nfa);
        let new_flat = CompiledAutomaton::compile(&new_nfa);
        assert_swap_transparent(&old_flat, &new_flat, &remap, &flows, None, "flat", seed);
        let identity = PlanRemap::identity(old_nfa.len());
        assert_identity_swap_exact(&old_flat, &identity, &flows, None, "flat identity", seed);

        // Sharded byte plans, uncapped and capped (every flow
        // round-trips through SuspendedFlow between feeds at cap 2) —
        // including one built by the cached parallel ruleset compiler.
        let old_sharded = ShardedAutomaton::compile(&old_nfa, 3);
        let mut cache = PlanCache::default();
        let (new_sharded, _) = compile_ruleset(&new_nfa, 2, &mut cache);
        assert_swap_transparent(
            &old_sharded,
            &new_sharded,
            &remap,
            &flows,
            None,
            "sharded",
            seed,
        );
        assert_swap_transparent(
            &old_sharded,
            &new_sharded,
            &remap,
            &flows,
            Some(2),
            "sharded capped",
            seed,
        );
        assert_identity_swap_exact(
            &old_sharded,
            &identity,
            &flows,
            Some(1),
            "sharded identity capped",
            seed,
        );

        // Encoded sharded plans: each version has its own codebook —
        // encoded execution is byte-exact, so the swap must still be
        // transparent across codebooks.
        let (old_components, _) = graph::component_ids(&old_nfa);
        let (new_components, _) = graph::component_ids(&new_nfa);
        let old_encoded =
            EncodingPlan::for_nfa(&old_nfa).compile_sharded(&old_nfa, &old_components);
        let new_encoded =
            EncodingPlan::for_nfa(&new_nfa).compile_sharded(&new_nfa, &new_components);
        assert_swap_transparent(
            &old_encoded,
            &new_encoded,
            &remap,
            &flows,
            Some(2),
            "encoded sharded",
            seed,
        );

        // Strided plans (flat and sharded) over the strided state
        // space and its own remap; odd cuts park a pending carry byte
        // across the swap.
        let old_strided_nfa = StridedNfa::from_nfa(&old_nfa);
        let new_strided_nfa = StridedNfa::from_nfa(&new_nfa);
        let strided_remap = PlanRemap::between_strided(&old_strided_nfa, &new_strided_nfa);
        let old_strided = CompiledStridedAutomaton::compile(&old_strided_nfa);
        let new_strided = CompiledStridedAutomaton::compile(&new_strided_nfa);
        assert_swap_transparent(
            &old_strided,
            &new_strided,
            &strided_remap,
            &flows,
            None,
            "strided flat",
            seed,
        );
        let old_strided_sharded = ShardedAutomaton::compile_strided(&old_strided_nfa, 2);
        let new_strided_sharded = ShardedAutomaton::compile_strided(&new_strided_nfa, 2);
        assert_swap_transparent(
            &old_strided_sharded,
            &new_strided_sharded,
            &strided_remap,
            &flows,
            Some(2),
            "strided sharded capped",
            seed,
        );
        let strided_identity = PlanRemap::identity(old_strided_nfa.len());
        assert_identity_swap_exact(
            &old_strided,
            &strided_identity,
            &flows,
            None,
            "strided identity",
            seed,
        );

        // Encoded strided sharded: per-half codebooks per version.
        let (old_sc, _) = old_strided_nfa.component_ids();
        let (new_sc, _) = new_strided_nfa.component_ids();
        let old_es = StridedEncoding::for_strided(&old_strided_nfa)
            .compile_sharded(&old_strided_nfa, &old_sc);
        let new_es = StridedEncoding::for_strided(&new_strided_nfa)
            .compile_sharded(&new_strided_nfa, &new_sc);
        assert_swap_transparent(
            &old_es,
            &new_es,
            &strided_remap,
            &flows,
            Some(2),
            "encoded strided sharded",
            seed,
        );
    }
}

/// The hybrid-DFA differential harness: a profile-free
/// [`compile_hybrid_ruleset`] plan — per-component subset-constructed
/// fast paths under both generous and deliberately tight blow-up caps
/// (the tight caps make some components decline and stay NFA, so the
/// plan mixes execution styles) — is report-bit-identical (content and
/// order) to the pure-NFA sharded plan, the flat engine, and the
/// encoded sharded flavour, across one-shot runs, random chunked feeds,
/// capped tables (cap 1 round-trips every DFA lane through
/// [`SuspendedFlow`](cama::sim::SuspendedFlow) between feeds), and
/// identity hot-swaps in both directions *across execution styles*
/// (hybrid⇄pure), which parks DFA lanes mid-flow and resumes them on a
/// plan with — or without — a DFA for the same component.
#[test]
fn hybrid_dfa_differential_equals_pure_nfa() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xDFAD_0000 + seed);
        let patterns: Vec<String> = (0..rng.random_range(2..6usize))
            .map(|_| loop {
                let pattern = random_pattern(&mut rng);
                if regex::compile(&pattern).is_ok() {
                    break pattern;
                }
            })
            .collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = regex::compile_set(&refs).unwrap();

        let mut cache = PlanCache::default();
        let (pure, _) = compile_ruleset(&nfa, 1, &mut cache);
        // Even seeds: default caps, everything reachable determinizes.
        // Odd seeds: tight caps, so bigger components decline and the
        // plan genuinely mixes DFA and NFA shards.
        let policy = if seed % 2 == 0 {
            DfaPolicy::default()
        } else {
            DfaPolicy {
                budget: DfaBudget {
                    max_states: 6,
                    max_table_bytes: 8 * 1024,
                },
                memory_budget: 12 * 1024,
                heat: Vec::new(),
            }
        };
        let (hybrid, _) = compile_hybrid_ruleset(&nfa, 2, &mut cache, &policy);
        if dfa_enabled() && seed % 2 == 0 {
            assert!(
                hybrid.num_dfa_shards() > 0,
                "seed {seed}: default caps determinized nothing"
            );
        }

        // The encoded sharded flavour as a third, codebook-indexed
        // pure-NFA oracle.
        let (components, _) = graph::component_ids(&nfa);
        let encoded = EncodingPlan::for_nfa(&nfa).compile_sharded(&nfa, &components);

        let mut input = random_input(&mut rng);
        input.extend(random_input(&mut rng));
        input.extend(random_input(&mut rng));
        let flat = Simulator::new(&nfa).run(&input);
        let one_pure = BatchSimulator::new(&pure).run_stream(&input);
        let one_hybrid = BatchSimulator::new(&hybrid).run_stream(&input);
        let one_encoded = BatchSimulator::new(&encoded).run_stream(&input);
        assert_eq!(one_pure.reports, flat.reports, "seed {seed}: pure vs flat");
        assert_eq!(
            one_hybrid.reports, one_pure.reports,
            "seed {seed}: hybrid vs pure"
        );
        assert_eq!(
            one_hybrid.reports, one_encoded.reports,
            "seed {seed}: hybrid vs encoded"
        );
        assert_eq!(
            one_hybrid.activity.cycles, one_pure.activity.cycles,
            "seed {seed}: cycle counts"
        );

        // Random chunked feeds round-robined across flows through
        // uncapped and capped tables.
        let flows: Vec<Vec<u8>> = (0..rng.random_range(2..5usize))
            .map(|_| random_input(&mut rng))
            .collect();
        let chunked: Vec<Vec<&[u8]>> = flows
            .iter()
            .map(|flow| random_chunks(&mut rng, flow))
            .collect();
        for cap in [None, Some(1), Some(2)] {
            let mut hybrid_batch = BatchSimulator::new(&hybrid);
            let mut pure_batch = BatchSimulator::new(&pure);
            if let Some(cap) = cap {
                hybrid_batch = hybrid_batch.max_resident(cap);
                pure_batch = pure_batch.max_resident(cap);
            }
            let rounds = chunked.iter().map(Vec::len).max().unwrap_or(0);
            for round in 0..rounds {
                for (id, chunks) in chunked.iter().enumerate() {
                    if let Some(chunk) = chunks.get(round) {
                        hybrid_batch.feed(id as StreamId, chunk);
                        pure_batch.feed(id as StreamId, chunk);
                    }
                }
            }
            for id in 0..flows.len() {
                let h = hybrid_batch.close(id as StreamId);
                let p = pure_batch.close(id as StreamId);
                assert_eq!(
                    h.reports, p.reports,
                    "seed {seed}, cap {cap:?}, flow {id}: reports"
                );
                assert_eq!(
                    h.activity.cycles, p.activity.cycles,
                    "seed {seed}, cap {cap:?}, flow {id}: cycles"
                );
            }
        }

        // Identity hot-swaps across execution styles: flows park on one
        // style mid-stream and resume on the other.
        let cut_flows: Vec<(Vec<u8>, usize)> = flows
            .iter()
            .map(|flow| {
                let cut = rng.random_range(0..=flow.len());
                (flow.clone(), cut)
            })
            .collect();
        let identity = PlanRemap::identity(nfa.len());
        assert_swap_transparent(
            &hybrid,
            &pure,
            &identity,
            &cut_flows,
            Some(2),
            "hybrid→pure swap",
            seed,
        );
        assert_swap_transparent(
            &pure,
            &hybrid,
            &identity,
            &cut_flows,
            Some(2),
            "pure→hybrid swap",
            seed,
        );
        // Same-plan identity swap: the full RunResult — every activity
        // statistic included — survives the DFA lanes' suspend /
        // translate / resume round-trip.
        assert_identity_swap_exact(
            &hybrid,
            &identity,
            &cut_flows,
            Some(1),
            "hybrid identity capped",
            seed,
        );
        assert_identity_swap_exact(
            &hybrid,
            &identity,
            &cut_flows,
            None,
            "hybrid identity",
            seed,
        );
    }
}
