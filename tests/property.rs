//! Property-based tests (proptest) over the core invariants of
//! DESIGN.md §6: regex/Glushkov correctness, encoding exactness, stride
//! equivalence, and crossbar-remap fidelity — all with randomly generated
//! structures.

use cama::core::bitset::BitSet;
use cama::core::regex::{self, reference};
use cama::core::stride::StridedNfa;
use cama::core::{Nfa, NfaBuilder, StartKind, SymbolClass};
use cama::encoding::EncodingPlan;
use cama::mem::{FullCrossbar, ReducedCrossbar, K_DIA};
use cama::sim::{Simulator, StridedSimulator};
use proptest::prelude::*;

/// A small pattern grammar guaranteed non-nullable and parser-safe.
fn arb_pattern() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        "[a-e]".prop_map(|s| s),
        Just("x".to_string()),
        Just("[^a]".to_string()),
        Just(".".to_string()),
        Just("[b-d]".to_string()),
    ];
    let unit = (atom, prop_oneof![Just(""), Just("+"), Just("?")])
        .prop_map(|(a, q)| format!("{a}{q}"));
    proptest::collection::vec(unit, 1..5).prop_map(|units| units.join(""))
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'x'), Just(b'z')],
        0..24,
    )
}

fn arb_nfa() -> impl Strategy<Value = Nfa> {
    let classes = proptest::collection::vec(
        (
            proptest::collection::vec(any::<u8>(), 1..6),
            any::<bool>(),
        ),
        2..12,
    );
    let edges = proptest::collection::vec((0usize..12, 0usize..12), 0..20);
    (classes, edges).prop_map(|(classes, edges)| {
        let n = classes.len();
        let mut builder = NfaBuilder::new();
        for (i, (symbols, negate)) in classes.into_iter().enumerate() {
            let class: SymbolClass = symbols.into_iter().collect();
            let class = if negate { !class } else { class };
            let id = builder.add_ste(class);
            if i % 3 == 0 {
                builder.set_start(id, StartKind::AllInput);
            }
            if i % 4 == 1 {
                builder.set_report(id, i as u32);
            }
        }
        // Always at least one start and one reporting state.
        builder.set_start(cama::core::SteId(0), StartKind::AllInput);
        builder.set_report(cama::core::SteId((n - 1) as u32), 99);
        for (from, to) in edges {
            if from < n && to < n {
                builder.add_edge(
                    cama::core::SteId(from as u32),
                    cama::core::SteId(to as u32),
                );
            }
        }
        builder.build().expect("non-empty classes")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn glushkov_agrees_with_reference(pattern in arb_pattern(), input in arb_input()) {
        let ast = regex::parse(&pattern).unwrap();
        prop_assume!(!ast.is_nullable());
        let nfa = regex::compile(&pattern).unwrap();
        let simulated = Simulator::new(&nfa).run(&input).report_offsets();
        let expected = reference::scan_report_offsets(&ast, &input);
        prop_assert_eq!(simulated, expected, "pattern {}", pattern);
    }

    #[test]
    fn encoding_is_exact_on_random_nfas(nfa in arb_nfa()) {
        let plan = EncodingPlan::for_nfa(&nfa);
        prop_assert!(plan.verify_exact(&nfa).is_ok());
        // Entries are never fewer than states that need at least one.
        prop_assert!(plan.total_entries() >= nfa.len());
    }

    #[test]
    fn stride_equivalence_on_random_nfas(nfa in arb_nfa(), input in arb_input()) {
        let baseline = Simulator::new(&nfa).run(&input).report_offsets();
        let strided = StridedNfa::from_nfa(&nfa);
        let strided_offsets = StridedSimulator::new(&strided).run(&input).report_offsets();
        prop_assert_eq!(baseline, strided_offsets);
    }

    #[test]
    fn rcb_equals_fcb_on_band_edges(
        seeds in proptest::collection::vec((0usize..256, 0usize..86), 1..40),
        active in proptest::collection::vec(0usize..256, 1..8),
    ) {
        // Build edges guaranteed inside the band: target in the source's
        // group or the next.
        let edges: Vec<(usize, usize)> = seeds
            .into_iter()
            .map(|(from, jump)| {
                let lo = (from / K_DIA) * K_DIA;
                let to = (lo + jump).min(255);
                (from, to)
            })
            .filter(|&(f, t)| ReducedCrossbar::supports(K_DIA, f, t))
            .collect();
        prop_assume!(!edges.is_empty());
        let rcb = ReducedCrossbar::try_program(256, K_DIA, edges.iter().copied()).unwrap();
        let mut fcb = FullCrossbar::new(256);
        for &(f, t) in &edges {
            fcb.connect(f, t);
        }
        let active = BitSet::from_indices(256, active);
        prop_assert_eq!(rcb.route(&active), fcb.route(&active));
    }

    #[test]
    fn anml_roundtrip_on_random_nfas(nfa in arb_nfa()) {
        let text = cama::core::anml::to_string(&nfa);
        let parsed = cama::core::anml::from_str(&text).unwrap();
        prop_assert_eq!(parsed.len(), nfa.len());
        prop_assert_eq!(parsed.num_edges(), nfa.num_edges());
        for i in 0..nfa.len() {
            let id = cama::core::SteId(i as u32);
            prop_assert_eq!(parsed.ste(id).class, nfa.ste(id).class);
            prop_assert_eq!(parsed.ste(id).start, nfa.ste(id).start);
        }
    }

    #[test]
    fn mnrl_roundtrip_on_random_nfas(nfa in arb_nfa()) {
        let text = cama::core::mnrl::to_string(&nfa);
        let parsed = cama::core::mnrl::from_str(&text).unwrap();
        prop_assert_eq!(parsed.len(), nfa.len());
        prop_assert_eq!(parsed.num_edges(), nfa.num_edges());
    }

    #[test]
    fn symbol_class_set_algebra(a in proptest::collection::vec(any::<u8>(), 0..40),
                                b in proptest::collection::vec(any::<u8>(), 0..40)) {
        let ca: SymbolClass = a.iter().copied().collect();
        let cb: SymbolClass = b.iter().copied().collect();
        // De Morgan.
        prop_assert_eq!(!(ca | cb), !ca & !cb);
        // Union/intersection sizes.
        prop_assert_eq!((ca | cb).len() + (ca & cb).len(), ca.len() + cb.len());
        // Display → parse roundtrip through the symbol-set grammar.
        if !ca.is_empty() {
            let parsed = cama::core::anml::parse_symbol_set(&ca.to_string()).unwrap();
            prop_assert_eq!(parsed, ca);
        }
    }
}
