//! Flow-churn stress for the serving control plane: millions of
//! open/feed/close events through a [`ControlledBatch`] with a tight
//! residency cap, verifying that every control-plane structure stays
//! bounded by its configured limit (no growth proportional to total
//! flows served) and that the per-tenant ledger conserves every byte
//! and every flow.
//!
//! The always-run test pushes 50 000 flows (≥ 100 000 open/close
//! events plus feeds and ticks); the million-flow test is the §VI.B
//! serving-scale figure and runs in the release lane
//! (`--include-ignored`).

use cama::core::compiled::ShardedAutomaton;
use cama::core::regex;
use cama::sim::control::{ControlConfig, ControlledBatch, FlowSpec, QosClass, RateLimit};
use cama::sim::StreamId;

/// The sliding window of concurrently open flows.
const WINDOW: usize = 256;
/// The residency cap — far below the window, so parking churns.
const RESIDENT_CAP: usize = 64;
/// Per-flow payload source (reports on every `ab+c`).
const CORPUS: &[u8] = b"zabcqabbbcxxabcyabbcabcz";

fn spec_for(flow: usize) -> FlowSpec {
    const CLASSES: [QosClass; 4] = [
        QosClass::Background,
        QosClass::Standard,
        QosClass::Premium,
        QosClass::Realtime,
    ];
    let mut spec = FlowSpec::new((flow % 16) as u32).with_class(CLASSES[flow % CLASSES.len()]);
    if flow.is_multiple_of(3) {
        spec = spec.with_deadline((flow / 3) as u64 % 512);
    }
    spec
}

/// Serves `total` flows through a sliding window, asserting the
/// bounded-memory invariants as it goes and the ledger conservation
/// laws at the end.
fn churn(total: usize) {
    let nfa = regex::compile("ab+c").expect("churn pattern");
    let plan = ShardedAutomaton::compile(&nfa, 4);
    let config = ControlConfig::new()
        .max_open(WINDOW + 1)
        .max_resident(RESIDENT_CAP)
        .flow_rate(RateLimit::new(8, 8))
        .defer_capacity(64 * 1024);
    let mut ctl = ControlledBatch::new(&plan, config);

    let mut offered = 0u64;
    let mut closed_flows = 0u64;
    let mut closed_cycles = 0u64;
    let mut closed_reports = 0u64;
    let mut max_deferred = 0usize;
    for flow in 0..total {
        // Keep the window: retire the oldest flow first, so admission
        // never sees the table full.
        if flow >= WINDOW {
            let retiree = (flow - WINDOW) as StreamId;
            let result = ctl.close(retiree);
            closed_flows += 1;
            closed_cycles += result.activity.cycles as u64;
            closed_reports += result.reports.len() as u64;
        }
        let id = flow as StreamId;
        assert!(
            ctl.open(id, spec_for(flow)).is_admitted(),
            "flow {flow} refused with the window below max_open"
        );
        // Two chunks per flow, lengths varying with the flow id.
        let payload = &CORPUS[..8 + flow % (CORPUS.len() - 8)];
        let split = 1 + flow % (payload.len() - 1);
        let first = ctl.feed(id, &payload[..split]);
        let second = ctl.feed(id, &payload[split..]);
        assert_eq!(
            first.rejected + second.rejected,
            0,
            "flow {flow}: deferral buffer overflowed"
        );
        offered += payload.len() as u64;
        if flow.is_multiple_of(7) {
            ctl.tick();
        }

        max_deferred = max_deferred.max(ctl.deferred_total());
        // The bounded-memory invariants: nothing in the control plane
        // or the table scales with `total`, only with the window.
        assert!(
            ctl.open_count() <= WINDOW + 1,
            "flow {flow}: open flows leak"
        );
        assert!(
            ctl.resident_count() <= RESIDENT_CAP,
            "flow {flow}: residency cap violated"
        );
        assert!(
            ctl.parked_count() <= WINDOW + 1,
            "flow {flow}: parked flows leak"
        );
        assert!(
            ctl.deferred_total() <= 64 * 1024,
            "flow {flow}: deferral bound violated"
        );
    }
    for flow in total.saturating_sub(WINDOW)..total {
        let result = ctl.close(flow as StreamId);
        closed_flows += 1;
        closed_cycles += result.activity.cycles as u64;
        closed_reports += result.reports.len() as u64;
    }
    assert_eq!(ctl.open_count(), 0);
    assert_eq!(ctl.deferred_total(), 0);
    // The tight budgets really did defer traffic along the way.
    assert!(max_deferred > 0, "rate limits never engaged");

    // Ledger conservation: summed across tenants, every flow and every
    // byte is accounted for exactly once.
    let mut opened = 0u64;
    let mut closed = 0u64;
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    let mut cycles = 0u64;
    let mut reports = 0u64;
    for (_, usage) in ctl.usages() {
        opened += usage.flows_opened;
        closed += usage.flows_closed;
        admitted += usage.bytes_admitted;
        rejected += usage.bytes_rejected;
        cycles += usage.cycles;
        reports += usage.reports;
    }
    assert_eq!(opened, total as u64);
    assert_eq!(closed, closed_flows);
    assert_eq!(closed, total as u64);
    assert_eq!(rejected, 0);
    // Every offered byte reached the datapath (deferred bytes count as
    // admitted when they drain), and ran exactly one cycle.
    assert_eq!(admitted, offered);
    assert_eq!(cycles, closed_cycles);
    assert_eq!(cycles, offered);
    assert_eq!(reports, closed_reports);
    assert!(reports > 0, "the corpus reports on every flow");
}

/// ≥ 100 000 open/close events (50 000 flows), always run.
#[test]
fn hundred_thousand_event_churn_is_bounded() {
    churn(50_000);
}

/// The million-flow serving scale of §VI.B. Ignored under debug builds;
/// the CI release lane runs it with `--include-ignored`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "million-flow churn runs in the release lane"
)]
fn million_flow_churn_is_bounded() {
    churn(1_000_000);
}
