//! Flow-churn stress for the serving control plane: millions of
//! open/feed/close events through a [`ControlledBatch`] with a tight
//! residency cap, verifying that every control-plane structure stays
//! bounded by its configured limit (no growth proportional to total
//! flows served) and that the per-tenant ledger conserves every byte
//! and every flow.
//!
//! The always-run test pushes 50 000 flows (≥ 100 000 open/close
//! events plus feeds and ticks); the million-flow test is the §VI.B
//! serving-scale figure and runs in the release lane
//! (`--include-ignored`).
//!
//! The run also hot-swaps the ruleset every [`SWAP_EVERY`] flows,
//! alternating between a one-pattern and a two-pattern version, so the
//! bounded-memory and ledger-conservation invariants are asserted
//! *across swap epochs*: a swap parks every open flow but loses no
//! bytes, no cycles, and no reports. With the residency cap far below
//! the window most flows are already parked when each swap lands, so
//! the lazy cold-flow path gets real coverage: those flows take a
//! `Deferred` verdict, translate only when they next resume or close,
//! and the stashed remap chain must stay bounded across all epochs.

use cama::core::compile::PlanRemap;
use cama::core::compiled::ShardedAutomaton;
use cama::core::regex;
use cama::sim::control::{ControlConfig, ControlledBatch, FlowSpec, QosClass, RateLimit};
use cama::sim::StreamId;

/// The sliding window of concurrently open flows.
const WINDOW: usize = 256;
/// The residency cap — far below the window, so parking churns.
const RESIDENT_CAP: usize = 64;
/// Flows between ruleset hot-swaps.
const SWAP_EVERY: usize = 5_000;
/// Per-flow payload source (reports on every `ab+c`; the second
/// ruleset's `xy+z` never fires — `y` never follows `x` — so totals
/// stay deterministic across swap epochs).
const CORPUS: &[u8] = b"zabcqabbbcxxabcyabbcabcz";

fn spec_for(flow: usize) -> FlowSpec {
    const CLASSES: [QosClass; 4] = [
        QosClass::Background,
        QosClass::Standard,
        QosClass::Premium,
        QosClass::Realtime,
    ];
    let mut spec = FlowSpec::new((flow % 16) as u32).with_class(CLASSES[flow % CLASSES.len()]);
    if flow.is_multiple_of(3) {
        spec = spec.with_deadline((flow / 3) as u64 % 512);
    }
    spec
}

/// Serves `total` flows through a sliding window, asserting the
/// bounded-memory invariants as it goes and the ledger conservation
/// laws at the end.
fn churn(total: usize) {
    // Two ruleset versions: `ab+c` keeps report code 0 in both, so the
    // remap carries its flows across every swap; `xy+z` is added and
    // removed each epoch.
    let nfa = regex::compile_set(&["ab+c"]).expect("churn pattern");
    let nfa_b = regex::compile_set(&["ab+c", "xy+z"]).expect("churn patterns");
    let plan = ShardedAutomaton::compile(&nfa, 4);
    let plan_b = ShardedAutomaton::compile(&nfa_b, 4);
    let grow = PlanRemap::between(&nfa, &nfa_b);
    let shrink = PlanRemap::between(&nfa_b, &nfa);
    let config = ControlConfig::new()
        .max_open(WINDOW + 1)
        .max_resident(RESIDENT_CAP)
        .flow_rate(RateLimit::new(8, 8))
        .defer_capacity(64 * 1024);
    let mut ctl = ControlledBatch::new(&plan, config);

    let mut offered = 0u64;
    let mut swaps = 0usize;
    let mut closed_flows = 0u64;
    let mut closed_cycles = 0u64;
    let mut closed_reports = 0u64;
    let mut max_deferred = 0usize;
    let mut deferred_verdicts = 0u64;
    for flow in 0..total {
        // Keep the window: retire the oldest flow first, so admission
        // never sees the table full.
        if flow >= WINDOW {
            let retiree = (flow - WINDOW) as StreamId;
            let result = ctl.close(retiree);
            closed_flows += 1;
            closed_cycles += result.activity.cycles as u64;
            closed_reports += result.reports.len() as u64;
        }
        let id = flow as StreamId;
        assert!(
            ctl.open(id, spec_for(flow)).is_admitted(),
            "flow {flow} refused with the window below max_open"
        );
        // Two chunks per flow, lengths varying with the flow id.
        let payload = &CORPUS[..8 + flow % (CORPUS.len() - 8)];
        let split = 1 + flow % (payload.len() - 1);
        let first = ctl.feed(id, &payload[..split]);
        let second = ctl.feed(id, &payload[split..]);
        assert_eq!(
            first.rejected + second.rejected,
            0,
            "flow {flow}: deferral buffer overflowed"
        );
        offered += payload.len() as u64;
        if flow.is_multiple_of(7) {
            ctl.tick();
        }
        // Hot-swap the ruleset mid-churn: odd epochs run the grown
        // two-pattern plan, even epochs swap back. Every open flow is
        // parked; growing drops nothing, and shrinking drops only
        // doomed `xy+z` states, so reports and cycles are unaffected.
        if flow > 0 && flow.is_multiple_of(SWAP_EVERY) {
            let open_before = ctl.open_count();
            let report = if (flow / SWAP_EVERY).is_multiple_of(2) {
                ctl.swap_plan(&plan, &shrink)
            } else {
                let report = ctl.swap_plan(&plan_b, &grow);
                assert_eq!(
                    report.states_dropped, 0,
                    "flow {flow}: a growing swap dropped states"
                );
                report
            };
            swaps += 1;
            assert_eq!(
                report.flows, open_before,
                "flow {flow}: flow missed by swap"
            );
            // Every flow gets exactly one verdict, and the cold
            // majority (parked under the tight cap) defers.
            assert_eq!(
                report.migrated + report.displaced + report.idle + report.deferred,
                report.flows,
                "flow {flow}: verdicts do not partition the table"
            );
            deferred_verdicts += report.deferred as u64;
            assert_eq!(
                ctl.resident_count(),
                0,
                "flow {flow}: swap left a resident session"
            );
            assert_eq!(
                ctl.open_count(),
                open_before,
                "flow {flow}: swap changed the open-flow count"
            );
        }

        max_deferred = max_deferred.max(ctl.deferred_total());
        // The bounded-memory invariants: nothing in the control plane
        // or the table scales with `total`, only with the window.
        assert!(
            ctl.open_count() <= WINDOW + 1,
            "flow {flow}: open flows leak"
        );
        assert!(
            ctl.resident_count() <= RESIDENT_CAP,
            "flow {flow}: residency cap violated"
        );
        assert!(
            ctl.parked_count() <= WINDOW + 1,
            "flow {flow}: parked flows leak"
        );
        assert!(
            ctl.deferred_total() <= 64 * 1024,
            "flow {flow}: deferral bound violated"
        );
        // The lazy-swap remap chain compacts: O(live deferral depth),
        // never O(swaps survived).
        assert!(
            ctl.pending_remap_count() <= 8,
            "flow {flow}: stashed remap chain leaks"
        );
    }
    for flow in total.saturating_sub(WINDOW)..total {
        let result = ctl.close(flow as StreamId);
        closed_flows += 1;
        closed_cycles += result.activity.cycles as u64;
        closed_reports += result.reports.len() as u64;
    }
    assert_eq!(ctl.open_count(), 0);
    assert_eq!(ctl.deferred_total(), 0);
    // Draining the table retires the last deferred snapshot, so the
    // remap chain is released with it.
    assert_eq!(ctl.pending_remap_count(), 0, "remap chain outlived flows");
    // The tight budgets really did defer traffic along the way, and
    // the run really did cross swap epochs.
    assert!(max_deferred > 0, "rate limits never engaged");
    assert_eq!(swaps, (total - 1) / SWAP_EVERY, "swap cadence drifted");
    // With the cap far below the window, most open flows were parked at
    // every swap: the lazy path must have actually deferred them.
    assert!(
        deferred_verdicts >= swaps as u64,
        "swaps never exercised deferred translation"
    );

    // Ledger conservation: summed across tenants, every flow and every
    // byte is accounted for exactly once.
    let mut opened = 0u64;
    let mut closed = 0u64;
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    let mut cycles = 0u64;
    let mut reports = 0u64;
    for (_, usage) in ctl.usages() {
        opened += usage.flows_opened;
        closed += usage.flows_closed;
        admitted += usage.bytes_admitted;
        rejected += usage.bytes_rejected;
        cycles += usage.cycles;
        reports += usage.reports;
    }
    assert_eq!(opened, total as u64);
    assert_eq!(closed, closed_flows);
    assert_eq!(closed, total as u64);
    assert_eq!(rejected, 0);
    // Every offered byte reached the datapath (deferred bytes count as
    // admitted when they drain), and ran exactly one cycle.
    assert_eq!(admitted, offered);
    assert_eq!(cycles, closed_cycles);
    assert_eq!(cycles, offered);
    assert_eq!(reports, closed_reports);
    assert!(reports > 0, "the corpus reports on every flow");
}

/// ≥ 100 000 open/close events (50 000 flows), always run.
#[test]
fn hundred_thousand_event_churn_is_bounded() {
    churn(50_000);
}

/// The million-flow serving scale of §VI.B. Ignored under debug builds;
/// the CI release lane runs it with `--include-ignored`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "million-flow churn runs in the release lane"
)]
fn million_flow_churn_is_bounded() {
    churn(1_000_000);
}
