//! Cross-crate integration: the full toolchain from pattern (or
//! interchange file) through encoding and mapping to mapped-hardware
//! execution, checked against the plain simulator at every step.

use cama::arch::designs::DesignKind;
use cama::arch::hardware::CamaHardware;
use cama::arch::mapping::map_design;
use cama::core::{anml, mnrl, regex};
use cama::encoding::EncodingPlan;
use cama::sim::Simulator;
use cama::workloads::Benchmark;

fn hardware_equals_simulator(nfa: &cama::core::Nfa, input: &[u8]) {
    let plan = EncodingPlan::for_nfa(nfa);
    plan.verify_exact(nfa).expect("encoding is exact");
    let mapping = map_design(DesignKind::CamaE, nfa, Some(&plan));
    let mut hardware = CamaHardware::build(nfa, &plan, &mapping);
    let hw = hardware.run(input);
    let mut sw = Simulator::new(nfa).run(input).reports;
    sw.sort_by_key(|r| (r.offset, r.ste));
    assert_eq!(hw, sw, "hardware/simulator divergence");
}

#[test]
fn regex_to_hardware_pipeline() {
    let patterns = [
        "(a|b)e*cd+",
        "GET /[a-z]+\\.html",
        "[0-9]{3}-[0-9]{4}",
        "x[^y]{2}z",
    ];
    let nfa = regex::compile_set(&patterns).unwrap();
    let input = b"GET /index.html 555-1234 beecd xaaz";
    hardware_equals_simulator(&nfa, input);
}

#[test]
fn anml_roundtrip_preserves_behaviour() {
    let nfa = Benchmark::Bro217.generate(0.05);
    let input = Benchmark::Bro217.input(&nfa, 2048, 9);
    let baseline = Simulator::new(&nfa).run(&input).report_offsets();

    let text = anml::to_string(&nfa);
    let parsed = anml::from_str(&text).unwrap();
    let reparsed = Simulator::new(&parsed).run(&input).report_offsets();
    assert_eq!(baseline, reparsed);
}

#[test]
fn mnrl_roundtrip_preserves_behaviour() {
    let nfa = Benchmark::Ranges1.generate(0.05);
    let input = Benchmark::Ranges1.input(&nfa, 2048, 10);
    let baseline = Simulator::new(&nfa).run(&input).report_offsets();

    let text = mnrl::to_string(&nfa);
    let parsed = mnrl::from_str(&text).unwrap();
    let reparsed = Simulator::new(&parsed).run(&input).report_offsets();
    assert_eq!(baseline, reparsed);
}

#[test]
fn every_benchmark_survives_the_full_pipeline() {
    for bench in Benchmark::ALL {
        let nfa = bench.generate(0.004);
        let input = bench.input(&nfa, 256, 11);
        hardware_equals_simulator(&nfa, &input);
    }
}

#[test]
fn encoding_is_exact_for_every_benchmark() {
    for bench in Benchmark::ALL {
        let nfa = bench.generate(0.01);
        let plan = EncodingPlan::for_nfa(&nfa);
        plan.verify_exact(&nfa)
            .unwrap_or_else(|e| panic!("{bench}: {e}"));
    }
}

#[test]
fn strided_execution_equals_byte_execution() {
    use cama::core::stride::StridedNfa;
    use cama::sim::StridedSimulator;
    for bench in [Benchmark::Brill, Benchmark::Tcp, Benchmark::BlockRings] {
        let nfa = bench.generate(0.005);
        let input = bench.input(&nfa, 1024, 12);
        let baseline = Simulator::new(&nfa).run(&input).report_offsets();
        let strided = StridedNfa::from_nfa(&nfa);
        let strided_offsets = StridedSimulator::new(&strided).run(&input).report_offsets();
        assert_eq!(baseline, strided_offsets, "{bench}");
    }
}

#[test]
fn nibble_execution_equals_byte_execution() {
    use cama::core::bitwidth::{to_nibble_nfa, to_nibble_stream};
    for bench in [Benchmark::Snort, Benchmark::ExactMatch] {
        let nfa = bench.generate(0.005);
        let input = bench.input(&nfa, 512, 13);
        let baseline = Simulator::new(&nfa).run(&input).report_offsets();
        let nibble = to_nibble_nfa(&nfa);
        let stream = to_nibble_stream(&input);
        let raw = Simulator::new(&nibble.nfa).run_multistep(&stream, nibble.chain);
        let mut mapped: Vec<usize> = raw.reports.iter().map(|r| r.offset / 2).collect();
        mapped.dedup();
        assert_eq!(baseline, mapped, "{bench}");
    }
}
